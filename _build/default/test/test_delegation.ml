(* Integration tests of the directory-delegation mechanism (§2.3):
   detection-triggered delegation, request forwarding, consumer-table
   hints, and all three undelegation reasons. *)

open Pcc_core

let line ?(home = 0) index = Types.Layout.make_line ~home ~index

let load l = Types.Access (Types.Load, l)

let store l = Types.Access (Types.Store, l)

(* A producer-consumer epoch program: [producer] writes [lines], the
   [consumers] read them, separated by barriers. *)
let pc_programs ~nodes ~producer ~consumers ~lines ~epochs =
  Array.init nodes (fun node ->
      List.concat
        (List.init epochs (fun e ->
             let produce = if node = producer then List.map store lines else [] in
             let consume = if List.mem node consumers then List.map load lines else [] in
             produce @ [ Types.Barrier ((2 * e) + 1) ] @ consume
             @ [ Types.Barrier ((2 * e) + 2) ])))

let run config programs =
  let result = System.run ~config ~programs () in
  Alcotest.(check int) "no SC violations" 0 result.System.violations;
  Alcotest.(check (list string)) "invariants hold" [] result.System.invariant_errors;
  result

let test_delegation_triggers_after_detection () =
  let l = line ~home:0 0 in
  let config = Config.full ~nodes:4 () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines:[ l ] ~epochs:8 in
  let r = run config programs in
  Alcotest.(check int) "exactly one delegation" 1 r.System.stats.Run_stats.delegations;
  (* detection needs the write-repeat counter to saturate: the delegating
     write cannot be among the first three epochs' writes *)
  Alcotest.(check bool) "not instant" true (r.System.stats.Run_stats.delegations <= 1)

let test_no_delegation_when_disabled () =
  let l = line ~home:0 0 in
  let config = Config.rac_only ~nodes:4 () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines:[ l ] ~epochs:8 in
  let r = run config programs in
  Alcotest.(check int) "no delegations" 0 r.System.stats.Run_stats.delegations

let test_no_delegation_for_multi_writer () =
  (* alternating writers never saturate the write-repeat counter *)
  let l = line ~home:0 0 in
  let config = Config.full ~nodes:4 () in
  let programs =
    Array.init 4 (fun node ->
        List.concat
          (List.init 12 (fun e ->
               let writer = 1 + (e mod 2) in
               let ops = if node = writer then [ store l ] else [] in
               ops
               @ [ Types.Barrier ((2 * e) + 1) ]
               @ (if node = 3 then [ load l ] else [])
               @ [ Types.Barrier ((2 * e) + 2) ])))
  in
  let r = run config programs in
  Alcotest.(check int) "multi-writer line never delegated" 0
    r.System.stats.Run_stats.delegations

let test_delegated_state_visible () =
  let l = line ~home:0 0 in
  let config = Config.full ~nodes:4 () in
  let t = System.create ~config () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2 ] ~lines:[ l ] ~epochs:8 in
  let result = System.run_programs t programs in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  Alcotest.(check bool) "producer holds the delegation" true
    (Node.is_delegated_producer (System.node t 1) l);
  let dir = Node.directory (System.node t 0) in
  let entry = Directory.entry dir l in
  Alcotest.(check bool) "home is in Dele" true (entry.Directory.state = Directory.Dele);
  Alcotest.(check int) "owner is the producer" 1 entry.Directory.owner

let test_consumer_hint_learned () =
  let l = line ~home:0 0 in
  let config = Config.delegation_only ~nodes:4 () in
  let t = System.create ~config () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines:[ l ] ~epochs:10 in
  let result = System.run_programs t programs in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  Alcotest.(check (option int)) "consumer learned the delegated home" (Some 1)
    (Node.consumer_hint (System.node t 2) l)

let test_undelegation_on_foreign_write () =
  (* §2.3.3 reason 3: another node requests exclusive access *)
  let l = line ~home:0 0 in
  let config = Config.full ~nodes:4 () in
  let base = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines:[ l ] ~epochs:8 in
  let programs =
    Array.mapi
      (fun node ops ->
        if node = 2 then ops @ [ Types.Barrier 1000; store l ]
        else ops @ [ Types.Barrier 1000 ])
      base
  in
  let t = System.create ~config () in
  let result = System.run_programs t programs in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  Alcotest.(check (list string)) "invariants" [] result.System.invariant_errors;
  Alcotest.(check bool) "undelegated" true (result.System.stats.Run_stats.undelegations >= 1);
  Alcotest.(check bool) "producer dropped the line" true
    (not (Node.is_delegated_producer (System.node t 1) l));
  let entry = Directory.entry (Node.directory (System.node t 0)) l in
  Alcotest.(check bool) "home no longer Dele" true (entry.Directory.state <> Directory.Dele)

let test_undelegation_on_capacity () =
  (* §2.3.3 reason 1: producer-table replacement.  More producer-consumer
     lines than table entries force undelegations. *)
  let nodes = 4 in
  let config = { (Config.full ~nodes ()) with Config.delegate_entries = 4; delegate_ways = 4 } in
  let lines = List.init 12 (fun i -> line ~home:0 i) in
  let programs = pc_programs ~nodes ~producer:1 ~consumers:[ 2 ] ~lines ~epochs:14 in
  let r = run config programs in
  Alcotest.(check bool) "capacity undelegations" true
    (r.System.stats.Run_stats.undelegations > 0);
  Alcotest.(check bool) "table bounded" true (r.System.stats.Run_stats.delegations > 4)

let test_delegation_reduces_3hop () =
  (* a remote producer with remote consumers: delegation turns the 3-hop
     pattern into 2-hop operations *)
  let lines = List.init 4 (fun i -> line ~home:0 i) in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines ~epochs:12 in
  let base = System.run ~config:(Config.base ~nodes:4 ()) ~programs () in
  let dele = System.run ~config:(Config.delegation_only ~nodes:4 ()) ~programs () in
  Alcotest.(check int) "coherent" 0 dele.System.violations;
  Alcotest.(check bool) "3-hop misses reduced" true
    (dele.System.stats.Run_stats.remote_3hop < base.System.stats.Run_stats.remote_3hop)

let test_self_delegation_at_home () =
  (* first-touch data homed at its producer: delegation costs no messages
     and still enables the producer table *)
  let l = line ~home:1 0 in
  let config = Config.full ~nodes:4 () in
  let t = System.create ~config () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2 ] ~lines:[ l ] ~epochs:8 in
  let result = System.run_programs t programs in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  Alcotest.(check bool) "home delegated to itself" true
    (Node.is_delegated_producer (System.node t 1) l)

let test_stale_hint_recovery () =
  (* after undelegation, consumers with stale hints are NACKed to the
     producer, drop the hint and retry at the home (§2.3.2) *)
  let l = line ~home:0 0 in
  let config =
    { (Config.full ~nodes:4 ()) with Config.delegate_entries = 4; delegate_ways = 4 }
  in
  let extra_lines = List.init 8 (fun i -> line ~home:0 (10 + i)) in
  let programs =
    Array.init 4 (fun node ->
        let epoch e lines =
          let produce = if node = 1 then List.map store lines else [] in
          let consume = if node = 2 then List.map load lines else [] in
          produce @ [ Types.Barrier ((2 * e) + 1) ] @ consume
          @ [ Types.Barrier ((2 * e) + 2) ]
        in
        List.concat
          (List.init 8 (fun e -> epoch e [ l ])
          (* extra producer-consumer lines overflow the 4-entry producer
             table, evicting l's delegation while consumers still hold
             hints for it *)
          @ List.init 8 (fun e -> epoch (50 + e) extra_lines)
          @ List.init 4 (fun e -> epoch (80 + e) [ l ])))
  in
  let r = run config programs in
  Alcotest.(check bool) "ran with undelegations" true
    (r.System.stats.Run_stats.undelegations >= 1)

let suite =
  [
    Alcotest.test_case "delegation after detection" `Quick
      test_delegation_triggers_after_detection;
    Alcotest.test_case "disabled = no delegation" `Quick test_no_delegation_when_disabled;
    Alcotest.test_case "multi-writer not delegated" `Quick
      test_no_delegation_for_multi_writer;
    Alcotest.test_case "delegated state visible" `Quick test_delegated_state_visible;
    Alcotest.test_case "consumer hint learned" `Quick test_consumer_hint_learned;
    Alcotest.test_case "undelegation on foreign write" `Quick
      test_undelegation_on_foreign_write;
    Alcotest.test_case "undelegation on capacity" `Quick test_undelegation_on_capacity;
    Alcotest.test_case "delegation reduces 3-hop" `Quick test_delegation_reduces_3hop;
    Alcotest.test_case "self-delegation at home" `Quick test_self_delegation_at_home;
    Alcotest.test_case "stale hint recovery" `Quick test_stale_hint_recovery;
  ]
