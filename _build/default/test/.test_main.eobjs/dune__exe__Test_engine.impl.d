test/test_engine.ml: Alcotest Array Fun List Pcc_engine
