test/test_properties.ml: Array Config Gen Int List Memory_check Nodeset Pcc_core Pcc_engine Pcc_memory Pcc_stats QCheck QCheck_alcotest Random Set String System Types
