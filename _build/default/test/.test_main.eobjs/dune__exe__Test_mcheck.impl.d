test/test_mcheck.ml: Alcotest Format List Pcc_mcheck Printf
