test/test_protocol.ml: Alcotest Array Config List Pcc_core Pcc_engine Pcc_stats Pcc_workload Run_stats System Types
