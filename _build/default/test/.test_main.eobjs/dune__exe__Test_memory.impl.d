test/test_memory.ml: Alcotest List Pcc_core Pcc_engine Pcc_memory
