test/test_updates.ml: Alcotest Array Config List Node Pcc_core Pcc_stats Run_stats System Types
