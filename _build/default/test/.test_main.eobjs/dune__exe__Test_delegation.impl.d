test/test_delegation.ml: Alcotest Array Config Directory List Node Pcc_core Run_stats System Types
