test/test_core_units.ml: Alcotest Config Delegate_cache Directory Hw_cost L2 List Memory_check Message Nodeset Pcc_core Pcc_engine Pcc_interconnect Predictor Rac Types
