test/test_stats.ml: Alcotest Astring_contains List Pcc_stats String
