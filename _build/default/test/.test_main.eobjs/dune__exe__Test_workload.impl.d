test/test_workload.ml: Alcotest Array Config List Option Pcc_core Pcc_engine Pcc_stats Pcc_workload Printf Run_stats System Types
