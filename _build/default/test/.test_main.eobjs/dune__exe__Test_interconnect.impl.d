test/test_interconnect.ml: Alcotest List Pcc_engine Pcc_interconnect
