(* Tests of the model checker and the abstract protocol models (§2.5). *)

module Checker = Pcc_mcheck.Checker
module Protocol_model = Pcc_mcheck.Protocol_model

(* A trivial counter model to validate the checker engine itself. *)
module Counter_model = struct
  type state = int

  let initial = [ 0 ]

  let successors n = if n >= 5 then [] else [ (Printf.sprintf "inc-%d" n, n + 1) ]

  let invariants = [ ("below 10", fun n -> n < 10) ]

  let is_quiescent n = n = 5

  let encode = string_of_int

  let pp = Format.pp_print_int
end

module Bad_counter_model = struct
  include Counter_model

  let invariants = [ ("below 3", fun n -> n < 3) ]
end

module Stuck_model = struct
  include Counter_model

  let successors n = if n >= 2 then [] else [ ("inc", n + 1) ]
  (* quiescence still requires 5: state 2 is a deadlock *)
end

let test_checker_ok () =
  match Checker.run (module Counter_model) () with
  | Checker.Ok stats ->
      Alcotest.(check int) "six states" 6 stats.Checker.states_explored;
      Alcotest.(check bool) "exhaustive" true stats.Checker.complete;
      Alcotest.(check int) "depth" 5 stats.Checker.max_depth
  | _ -> Alcotest.fail "expected Ok"

let test_checker_finds_violation () =
  match Checker.run (module Bad_counter_model) () with
  | Checker.Invariant_violation { invariant; trace; state; _ } ->
      Alcotest.(check string) "which invariant" "below 3" invariant;
      Alcotest.(check int) "violating state" 3 state;
      Alcotest.(check (list string)) "counterexample" [ "inc-0"; "inc-1"; "inc-2" ] trace
  | _ -> Alcotest.fail "expected violation"

let test_checker_finds_deadlock () =
  match Checker.run (module Stuck_model) () with
  | Checker.Deadlock { state; trace; _ } ->
      Alcotest.(check int) "stuck state" 2 state;
      Alcotest.(check int) "trace length" 2 (List.length trace)
  | _ -> Alcotest.fail "expected deadlock"

let test_checker_bound () =
  match Checker.run (module Counter_model) ~max_states:3 () with
  | Checker.Ok stats -> Alcotest.(check bool) "not exhaustive" false stats.Checker.complete
  | _ -> Alcotest.fail "expected bounded Ok"

(* state-type-free summary so the locally unpacked model type does not
   escape *)
type summary =
  | S_ok of Checker.stats
  | S_violation of string * int  (* invariant name, trace length *)
  | S_deadlock of int

let run_model ?(max_states = 3_000_000) params =
  let (module M) = Protocol_model.make params in
  match Checker.run (module M) ~max_states () with
  | Checker.Ok stats -> S_ok stats
  | Checker.Invariant_violation { invariant; trace; _ } ->
      S_violation (invariant, List.length trace)
  | Checker.Deadlock { trace; _ } -> S_deadlock (List.length trace)

let check_ok name outcome =
  match outcome with
  | S_ok stats ->
      Alcotest.(check bool) (name ^ " explored states") true (stats.Checker.states_explored > 100);
      Alcotest.(check bool) (name ^ " exhaustive") true stats.Checker.complete
  | S_violation (invariant, steps) ->
      Alcotest.failf "%s: invariant '%s' violated (%d-step trace)" name invariant steps
  | S_deadlock steps -> Alcotest.failf "%s: deadlock (%d-step trace)" name steps

let test_base_protocol_verified () =
  check_ok "base 2n"
    (run_model
       {
         Protocol_model.default_params with
         nodes = 2;
         enable_delegation = false;
         enable_updates = false;
       })

let test_base_protocol_3n () =
  check_ok "base 3n"
    (run_model
       {
         Protocol_model.default_params with
         enable_delegation = false;
         enable_updates = false;
       })

(* the 3-node full state spaces are enormous; explore a bounded prefix
   and require that no violation or deadlock is reachable within it *)
let check_no_violation_within_bound name outcome =
  match outcome with
  | S_ok _ -> ()
  | S_violation (invariant, steps) ->
      Alcotest.failf "%s: invariant '%s' violated (%d-step trace)" name invariant steps
  | S_deadlock steps -> Alcotest.failf "%s: deadlock (%d-step trace)" name steps

let test_full_protocol_2n () =
  check_ok "full 2n" (run_model { Protocol_model.default_params with nodes = 2 })

let test_full_protocol_3n_1op () =
  check_ok "full 3n 1op"
    (run_model { Protocol_model.default_params with max_ops_per_node = 1 })

let test_full_protocol_3n_2ops_bounded () =
  check_no_violation_within_bound "full 3n 2ops (bounded)"
    (run_model ~max_states:400_000 Protocol_model.default_params)

let test_delegation_without_updates () =
  check_ok "delegation-only 3n 1op"
    (run_model
       {
         Protocol_model.default_params with
         max_ops_per_node = 1;
         enable_updates = false;
       })

let expect_violation name outcome =
  match outcome with
  | S_violation _ -> ()
  | S_ok _ -> Alcotest.failf "%s: seeded bug not detected" name
  | S_deadlock _ -> () (* a seeded bug may also surface as deadlock *)

let test_bug_skip_invals_detected () =
  expect_violation "skip-invals"
    (run_model
       {
         Protocol_model.default_params with
         max_ops_per_node = 1;
         bug = Some Protocol_model.Skip_invals_on_delegate;
       })

let test_bug_no_poison_detected () =
  expect_violation "no-poison"
    (run_model ~max_states:600_000
       { Protocol_model.default_params with bug = Some Protocol_model.No_poison_on_inval })

let test_bug_no_resharing_detected () =
  expect_violation "no-resharing"
    (run_model ~max_states:600_000
       {
         Protocol_model.default_params with
         bug = Some Protocol_model.Updates_without_resharing;
       })

let suite =
  [
    Alcotest.test_case "engine: ok" `Quick test_checker_ok;
    Alcotest.test_case "engine: violation + trace" `Quick test_checker_finds_violation;
    Alcotest.test_case "engine: deadlock" `Quick test_checker_finds_deadlock;
    Alcotest.test_case "engine: state bound" `Quick test_checker_bound;
    Alcotest.test_case "base protocol 2n exhaustive" `Quick test_base_protocol_verified;
    Alcotest.test_case "base protocol 3n exhaustive" `Slow test_base_protocol_3n;
    Alcotest.test_case "full protocol 2n exhaustive" `Quick test_full_protocol_2n;
    Alcotest.test_case "full protocol 3n (1 op)" `Slow test_full_protocol_3n_1op;
    Alcotest.test_case "full protocol 3n (2 ops, bounded)" `Slow
      test_full_protocol_3n_2ops_bounded;
    Alcotest.test_case "delegation-only verified" `Quick test_delegation_without_updates;
    Alcotest.test_case "seeded bug: skip invals" `Quick test_bug_skip_invals_detected;
    Alcotest.test_case "seeded bug: no poison" `Slow test_bug_no_poison_detected;
    Alcotest.test_case "seeded bug: no resharing" `Slow test_bug_no_resharing_detected;
  ]
