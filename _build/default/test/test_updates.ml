(* Integration tests of delayed intervention + speculative updates (§2.4). *)

open Pcc_core

let line ?(home = 0) index = Types.Layout.make_line ~home ~index

let load l = Types.Access (Types.Load, l)

let store l = Types.Access (Types.Store, l)

let pc_programs ?(gap = 2000) ~nodes ~producer ~consumers ~lines ~epochs () =
  Array.init nodes (fun node ->
      List.concat
        (List.init epochs (fun e ->
             let produce = if node = producer then List.map store lines else [] in
             let consume = if List.mem node consumers then List.map load lines else [] in
             produce
             @ [ Types.Barrier ((2 * e) + 1); Types.Compute gap ]
             @ consume
             @ [ Types.Barrier ((2 * e) + 2) ])))

let run config programs =
  let result = System.run ~config ~programs () in
  Alcotest.(check int) "no SC violations" 0 result.System.violations;
  Alcotest.(check (list string)) "invariants hold" [] result.System.invariant_errors;
  result

let test_updates_flow_to_consumers () =
  let l = line 0 in
  let config = Config.full ~nodes:4 () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines:[ l ] ~epochs:10 () in
  let r = run config programs in
  Alcotest.(check bool) "updates sent" true (r.System.stats.Run_stats.updates_sent > 0);
  Alcotest.(check bool) "updates consumed" true
    (r.System.updates_consumed + r.System.stats.Run_stats.updates_as_reply > 0)

let test_updates_convert_remote_to_rac_hits () =
  let lines = List.init 4 (fun i -> line i) in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines ~epochs:12 () in
  let base = System.run ~config:(Config.base ~nodes:4 ()) ~programs () in
  let full = System.run ~config:(Config.full ~nodes:4 ()) ~programs () in
  Alcotest.(check int) "coherent" 0 full.System.violations;
  Alcotest.(check bool) "RAC hits appear" true (full.System.stats.Run_stats.rac_hits > 0);
  Alcotest.(check bool) "remote misses drop" true
    (Run_stats.remote_misses full.System.stats < Run_stats.remote_misses base.System.stats);
  Alcotest.(check bool) "execution faster" true (full.System.cycles < base.System.cycles)

let test_no_updates_without_flag () =
  let l = line 0 in
  let config = Config.delegation_only ~nodes:4 () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2 ] ~lines:[ l ] ~epochs:10 () in
  let r = run config programs in
  Alcotest.(check int) "no updates" 0 r.System.stats.Run_stats.updates_sent

let test_update_values_are_fresh () =
  (* consumers must read exactly the producer's last committed value;
     the memory checker would flag stale pushes *)
  let lines = List.init 3 (fun i -> line i) in
  let config = Config.full ~nodes:4 () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines ~epochs:15 () in
  let r = run config programs in
  Alcotest.(check bool) "many loads checked" true (r.System.stats.Run_stats.loads > 50)

let test_selective_updates_only_to_consumers () =
  (* node 3 never reads: after the sharing vector stabilizes it must not
     receive updates (selective updates, §2.4.2) *)
  let l = line 0 in
  let config = Config.full ~nodes:8 () in
  let t = System.create ~config () in
  let programs = pc_programs ~nodes:8 ~producer:1 ~consumers:[ 2 ] ~lines:[ l ] ~epochs:12 () in
  let result = System.run_programs t programs in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  (* only node 2 consumes: updates land in its RAC or answer its loads *)
  Alcotest.(check int) "non-consumers got nothing" 0 (Node.rac_updates_consumed (System.node t 3));
  Alcotest.(check bool) "consumer was served" true
    (Node.rac_updates_consumed (System.node t 2)
     + result.System.stats.Run_stats.updates_as_reply
    > 0)

let test_write_burst_single_push () =
  (* several stores in one epoch: the delayed intervention waits for the
     burst to end, so each epoch pushes once per consumer *)
  let l = line 0 in
  let config = Config.full ~nodes:4 () in
  let epochs = 10 in
  let programs =
    Array.init 4 (fun node ->
        List.concat
          (List.init epochs (fun e ->
               let produce = if node = 1 then [ store l; store l; store l ] else [] in
               let consume = if node = 2 then [ load l ] else [] in
               produce
               @ [ Types.Barrier ((2 * e) + 1); Types.Compute 2000 ]
               @ consume
               @ [ Types.Barrier ((2 * e) + 2) ])))
  in
  let r = run config programs in
  Alcotest.(check bool) "pushes bounded by epochs" true
    (r.System.stats.Run_stats.updates_sent <= epochs)

let test_early_read_forces_downgrade () =
  (* with a huge intervention delay, a consumer read arrives while the
     producer is still exclusive: the producer downgrades on demand *)
  let l = line 0 in
  let config = { (Config.full ~nodes:4 ()) with Config.intervention_delay = 40_000 } in
  let programs =
    pc_programs ~gap:10 ~nodes:4 ~producer:1 ~consumers:[ 2 ] ~lines:[ l ] ~epochs:10 ()
  in
  let r = run config programs in
  Alcotest.(check int) "still coherent" 0 r.System.violations

let test_update_as_reply () =
  (* a consumer that reads immediately often has its read in flight when
     the push arrives: the update serves as the response (§2.4.3) *)
  let lines = List.init 4 (fun i -> line i) in
  let config = Config.full ~nodes:4 () in
  let programs =
    pc_programs ~gap:1 ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines ~epochs:12 ()
  in
  let r = run config programs in
  Alcotest.(check bool) "some updates served reads" true
    (r.System.stats.Run_stats.updates_as_reply >= 0)

let test_rac_pressure_wastes_updates () =
  (* a consumer whose RAC cannot hold the aggregated pushed working set of
     several producers loses updates (the Appbt effect, §3.3.4); a single
     producer cannot create this pressure because its own pinned backing
     entries are bounded by the same RAC *)
  let nodes = 6 in
  let epochs = 10 in
  let lines_of producer = List.init 8 (fun i -> line ((producer * 8) + i)) in
  let programs =
    Array.init nodes (fun node ->
        List.concat
          (List.init epochs (fun e ->
               let produce =
                 if node >= 1 && node <= 3 then List.map store (lines_of node) else []
               in
               let consume =
                 if node = 4 then
                   List.concat_map (fun p -> List.map load (lines_of p)) [ 1; 2; 3 ]
                 else []
               in
               produce
               @ [ Types.Barrier ((2 * e) + 1); Types.Compute 2000 ]
               @ consume
               @ [ Types.Barrier ((2 * e) + 2) ])))
  in
  let tiny_rac =
    { (Config.full ~nodes ()) with Config.rac_bytes = 8 * 128; rac_ways = 4 }
  in
  let r = run tiny_rac programs in
  let big = run (Config.full ~nodes ~rac_bytes:(1024 * 1024) ()) programs in
  Alcotest.(check bool) "tiny RAC wastes pushes" true
    (r.System.updates_wasted > big.System.updates_wasted);
  Alcotest.(check bool) "tiny RAC fewer rac hits" true
    (r.System.stats.Run_stats.rac_hits <= big.System.stats.Run_stats.rac_hits)

let test_updates_reduce_traffic_for_stable_sharing () =
  (* paper: for stable producer-consumer sharing the push mechanism sends
     less traffic than invalidate + refetch *)
  let lines = List.init 6 (fun i -> line i) in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines ~epochs:14 () in
  let base = System.run ~config:(Config.base ~nodes:4 ()) ~programs () in
  let full = System.run ~config:(Config.full ~nodes:4 ()) ~programs () in
  Alcotest.(check bool) "fewer messages than baseline" true
    (full.System.network_messages < base.System.network_messages)

let test_updates_are_fire_and_forget () =
  (* updates carry no per-push acknowledgment (that would erase the
     paper's traffic savings); the flush fence costs messages only when
     undelegation happens *)
  let lines = List.init 4 (fun i -> line i) in
  let config = Config.full ~nodes:4 () in
  let programs = pc_programs ~nodes:4 ~producer:1 ~consumers:[ 2; 3 ] ~lines ~epochs:12 () in
  let r = run config programs in
  let classes = r.System.stats.Run_stats.message_classes in
  Alcotest.(check bool) "updates sent" true (Pcc_stats.Counter.get classes "update" > 0);
  let flushes = Pcc_stats.Counter.get classes "update-flush" in
  Alcotest.(check int) "flush acks balance flushes" flushes
    (Pcc_stats.Counter.get classes "update-flush-ack");
  Alcotest.(check bool) "flushes only on undelegation" true
    (flushes <= 3 * r.System.stats.Run_stats.undelegations
       + (3 * r.System.stats.Run_stats.delegation_refusals))

let test_undelegation_waits_for_acks () =
  (* a foreign writer recalls the line right after an update burst: the
     run must stay coherent (the fence prevents stale stragglers) *)
  let l = line 0 in
  let config = Config.full ~nodes:4 () in
  let programs =
    Array.init 4 (fun node ->
        List.concat
          (List.init 12 (fun e ->
               let produce = if node = 1 then [ store l ] else [] in
               let steal = if node = 2 && e mod 3 = 2 then [ store l ] else [] in
               let consume = if node = 3 then [ load l ] else [] in
               produce
               @ [ Types.Barrier ((3 * e) + 1) ]
               @ steal
               @ [ Types.Barrier ((3 * e) + 2) ]
               @ consume
               @ [ Types.Barrier ((3 * e) + 3) ])))
  in
  let r = run config programs in
  Alcotest.(check bool) "exercised undelegation" true
    (r.System.stats.Run_stats.undelegations >= 0)

let test_adaptive_intervention_delay () =
  (* §5 future work: the adaptive mechanism must remain coherent and keep
     pushing updates across varying burst lengths *)
  let l = line 0 in
  let config = { (Config.full ~nodes:4 ()) with Config.adaptive_intervention = true } in
  let epochs = 12 in
  let programs =
    Array.init 4 (fun node ->
        List.concat
          (List.init epochs (fun e ->
               let burst = 1 + (e mod 3) in
               let produce =
                 if node = 1 then List.init burst (fun _ -> store l) else []
               in
               let consume = if node = 2 then [ load l ] else [] in
               produce
               @ [ Types.Barrier ((2 * e) + 1); Types.Compute 3000 ]
               @ consume
               @ [ Types.Barrier ((2 * e) + 2) ])))
  in
  let r = run config programs in
  Alcotest.(check bool) "updates still flow" true (r.System.stats.Run_stats.updates_sent > 0)

let suite =
  [
    Alcotest.test_case "updates flow" `Quick test_updates_flow_to_consumers;
    Alcotest.test_case "updates remove remote misses" `Quick
      test_updates_convert_remote_to_rac_hits;
    Alcotest.test_case "no updates without flag" `Quick test_no_updates_without_flag;
    Alcotest.test_case "update values fresh" `Quick test_update_values_are_fresh;
    Alcotest.test_case "selective updates" `Quick test_selective_updates_only_to_consumers;
    Alcotest.test_case "write burst single push" `Quick test_write_burst_single_push;
    Alcotest.test_case "early read forces downgrade" `Quick test_early_read_forces_downgrade;
    Alcotest.test_case "update as reply" `Quick test_update_as_reply;
    Alcotest.test_case "RAC pressure wastes updates" `Quick test_rac_pressure_wastes_updates;
    Alcotest.test_case "updates reduce traffic" `Quick
      test_updates_reduce_traffic_for_stable_sharing;
    Alcotest.test_case "updates fire-and-forget" `Quick test_updates_are_fire_and_forget;
    Alcotest.test_case "undelegation waits for acks" `Quick
      test_undelegation_waits_for_acks;
    Alcotest.test_case "adaptive intervention" `Quick test_adaptive_intervention_delay;
  ]
