(* Minimal substring search used by tests (no external string library). *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let found = ref false in
    for i = 0 to hl - nl do
      if (not !found) && String.sub haystack i nl = needle then found := true
    done;
    !found
  end
