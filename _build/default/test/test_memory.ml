(* Unit tests for address arithmetic, the generic cache, and DRAM. *)

module Address = Pcc_memory.Address
module Cache = Pcc_memory.Cache
module Dram = Pcc_memory.Dram
module Rng = Pcc_engine.Rng

let test_address_roundtrip () =
  Alcotest.(check int) "line of addr" 3 (Address.line_of_addr (3 * Address.line_size));
  Alcotest.(check int) "addr of line" (7 * Address.line_size) (Address.addr_of_line 7);
  Alcotest.(check int) "offset" 5 (Address.offset_in_line ((9 * Address.line_size) + 5))

let test_address_lines_covering () =
  Alcotest.(check (list int)) "single line" [ 0 ]
    (Address.lines_covering 0 ~bytes:Address.line_size);
  Alcotest.(check (list int)) "straddles" [ 0; 1 ]
    (Address.lines_covering (Address.line_size - 4) ~bytes:8);
  Alcotest.(check (list int)) "three lines" [ 2; 3; 4 ]
    (Address.lines_covering (2 * Address.line_size) ~bytes:(2 * Address.line_size + 1))

let fresh_cache ?(policy = Cache.Lru) ~sets ~ways () =
  Cache.create ~policy ~rng:(Rng.create ~seed:1) ~sets ~ways ()

let test_cache_insert_find () =
  let c = fresh_cache ~sets:4 ~ways:2 () in
  (match Cache.insert c 10 "a" with
  | Cache.Inserted None -> ()
  | _ -> Alcotest.fail "unexpected eviction");
  Alcotest.(check (option string)) "find" (Some "a") (Cache.find c 10);
  Alcotest.(check (option string)) "peek" (Some "a") (Cache.peek c 10);
  Alcotest.(check bool) "mem" true (Cache.mem c 10);
  Alcotest.(check (option string)) "miss" None (Cache.find c 11)

let test_cache_overwrite () =
  let c = fresh_cache ~sets:1 ~ways:2 () in
  ignore (Cache.insert c 1 "a");
  (match Cache.insert c 1 "b" with
  | Cache.Inserted None -> ()
  | _ -> Alcotest.fail "overwrite must not evict");
  Alcotest.(check (option string)) "updated" (Some "b") (Cache.find c 1);
  Alcotest.(check int) "size" 1 (Cache.size c)

let test_cache_lru_eviction () =
  let c = fresh_cache ~sets:1 ~ways:2 () in
  ignore (Cache.insert c 1 "a");
  ignore (Cache.insert c 2 "b");
  ignore (Cache.find c 1);
  (* 2 is now least recently used *)
  (match Cache.insert c 3 "c" with
  | Cache.Inserted (Some (victim, "b")) -> Alcotest.(check int) "victim" 2 victim
  | _ -> Alcotest.fail "expected eviction of key 2");
  Alcotest.(check bool) "1 kept" true (Cache.mem c 1)

let test_cache_peek_does_not_touch () =
  let c = fresh_cache ~sets:1 ~ways:2 () in
  ignore (Cache.insert c 1 "a");
  ignore (Cache.insert c 2 "b");
  ignore (Cache.peek c 1);
  (* peek must not refresh 1, so 1 is still LRU *)
  (match Cache.insert c 3 "c" with
  | Cache.Inserted (Some (victim, _)) -> Alcotest.(check int) "victim" 1 victim
  | _ -> Alcotest.fail "expected eviction")

let test_cache_pinning () =
  let c = fresh_cache ~sets:1 ~ways:2 () in
  ignore (Cache.insert ~pin:true c 1 "a");
  ignore (Cache.insert ~pin:true c 2 "b");
  (match Cache.insert c 3 "c" with
  | Cache.All_ways_pinned -> ()
  | _ -> Alcotest.fail "expected All_ways_pinned");
  Cache.unpin c 1;
  (match Cache.insert c 3 "c" with
  | Cache.Inserted (Some (1, "a")) -> ()
  | _ -> Alcotest.fail "expected unpinned victim 1");
  Alcotest.(check bool) "pinned survivor" true (Cache.mem c 2)

let test_cache_remove () =
  let c = fresh_cache ~sets:2 ~ways:2 () in
  ignore (Cache.insert c 5 "x");
  Alcotest.(check (option string)) "removed" (Some "x") (Cache.remove c 5);
  Alcotest.(check (option string)) "gone" None (Cache.remove c 5);
  Alcotest.(check int) "empty" 0 (Cache.size c)

let test_cache_is_pinned () =
  let c = fresh_cache ~sets:1 ~ways:2 () in
  ignore (Cache.insert ~pin:true c 1 "a");
  Alcotest.(check bool) "pinned" true (Cache.is_pinned c 1);
  Cache.unpin c 1;
  Alcotest.(check bool) "unpinned" false (Cache.is_pinned c 1);
  Alcotest.(check bool) "absent not pinned" false (Cache.is_pinned c 9)

let test_cache_capacity_iter_fold () =
  let c = fresh_cache ~sets:4 ~ways:2 () in
  Alcotest.(check int) "capacity" 8 (Cache.capacity c);
  for i = 0 to 5 do
    ignore (Cache.insert c i i)
  done;
  let sum = Cache.fold (fun _ v acc -> acc + v) c 0 in
  Alcotest.(check bool) "fold visits live entries" true (sum <= 15 && sum >= 0);
  let count = ref 0 in
  Cache.iter (fun _ _ -> incr count) c;
  Alcotest.(check int) "iter count = size" (Cache.size c) !count

let test_cache_set_hashing () =
  (* lines with equal low bits but different "home" high bits must not all
     collide into one set *)
  let c = fresh_cache ~sets:64 ~ways:4 () in
  let lines =
    List.init 16 (fun home -> Pcc_core.Types.Layout.make_line ~home ~index:3)
  in
  List.iter (fun line -> ignore (Cache.insert c line line)) lines;
  Alcotest.(check int) "no aliased evictions" 16 (Cache.size c)

let test_dram_latency () =
  let d = Dram.create ~channels:2 ~occupancy:10 ~latency:200 () in
  Alcotest.(check int) "unloaded" 300 (Dram.access d ~now:100);
  Alcotest.(check int) "accesses" 1 (Dram.accesses d)

let test_dram_contention () =
  let d = Dram.create ~channels:1 ~occupancy:16 ~latency:200 () in
  let c1 = Dram.access d ~now:0 in
  let c2 = Dram.access d ~now:0 in
  Alcotest.(check int) "first" 200 c1;
  Alcotest.(check int) "queued behind occupancy" 216 c2

let test_dram_channels_parallel () =
  let d = Dram.create ~channels:4 ~occupancy:16 ~latency:200 () in
  let completions = List.init 4 (fun _ -> Dram.access d ~now:0) in
  List.iter (fun c -> Alcotest.(check int) "parallel channels" 200 c) completions

let test_dram_reset () =
  let d = Dram.create ~channels:1 ~occupancy:16 ~latency:100 () in
  ignore (Dram.access d ~now:0);
  Dram.reset d;
  Alcotest.(check int) "counter reset" 0 (Dram.accesses d);
  Alcotest.(check int) "timing reset" 100 (Dram.access d ~now:0)

let suite =
  [
    Alcotest.test_case "address roundtrip" `Quick test_address_roundtrip;
    Alcotest.test_case "address lines covering" `Quick test_address_lines_covering;
    Alcotest.test_case "cache insert/find" `Quick test_cache_insert_find;
    Alcotest.test_case "cache overwrite" `Quick test_cache_overwrite;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache peek preserves recency" `Quick test_cache_peek_does_not_touch;
    Alcotest.test_case "cache pinning" `Quick test_cache_pinning;
    Alcotest.test_case "cache remove" `Quick test_cache_remove;
    Alcotest.test_case "cache is_pinned" `Quick test_cache_is_pinned;
    Alcotest.test_case "cache capacity/iter/fold" `Quick test_cache_capacity_iter_fold;
    Alcotest.test_case "cache set hashing" `Quick test_cache_set_hashing;
    Alcotest.test_case "dram latency" `Quick test_dram_latency;
    Alcotest.test_case "dram contention" `Quick test_dram_contention;
    Alcotest.test_case "dram parallel channels" `Quick test_dram_channels_parallel;
    Alcotest.test_case "dram reset" `Quick test_dram_reset;
  ]
