(* Integration tests of the base write-invalidate directory protocol:
   whole-system runs that check timing classes, message behaviour, value
   correctness and the §2.5 invariants. *)

open Pcc_core

let line ?(home = 1) index = Types.Layout.make_line ~home ~index

let load l = Types.Access (Types.Load, l)

let store l = Types.Access (Types.Store, l)

let run ?(config = Config.base ~nodes:4 ()) programs =
  let result = System.run ~config ~programs () in
  Alcotest.(check int) "no SC violations" 0 result.System.violations;
  Alcotest.(check (list string)) "invariants hold" [] result.System.invariant_errors;
  result

let programs_of lists = Array.of_list lists

let test_local_access () =
  let l = line ~home:0 0 in
  let r = run (programs_of [ [ store l; load l ]; []; []; [] ]) in
  Alcotest.(check int) "no network messages" 0 r.System.network_messages;
  Alcotest.(check int) "one local-mem miss" 1 r.System.stats.Run_stats.local_mem_misses;
  Alcotest.(check int) "load hits L2" 1 r.System.stats.Run_stats.l2_hits

let test_remote_read_is_2hop () =
  let l = line ~home:1 0 in
  let r = run (programs_of [ [ load l ]; []; []; [] ]) in
  Alcotest.(check int) "2-hop" 1 r.System.stats.Run_stats.remote_2hop;
  Alcotest.(check int) "request + data" 2 r.System.network_messages

let test_dirty_remote_read_is_3hop () =
  let l = line ~home:1 0 in
  (* node 2 writes (owner), then node 3 reads: home forwards an
     intervention, the data comes from the owner: 3 hops *)
  let r =
    run
      (programs_of
         [
           [ Types.Barrier 1 ];
           [ Types.Barrier 1 ];
           [ store l; Types.Barrier 1 ];
           [ Types.Barrier 1; load l ];
         ])
  in
  Alcotest.(check int) "one 3-hop read" 1 r.System.stats.Run_stats.remote_3hop;
  Alcotest.(check int) "one intervention" 1 r.System.stats.Run_stats.interventions_sent

let test_write_invalidates_sharers () =
  let l = line ~home:0 0 in
  let barrier i = Types.Barrier i in
  let programs =
    programs_of
      [
        [ barrier 1; store l; barrier 2 ];
        [ load l; barrier 1; barrier 2; load l ];
        [ load l; barrier 1; barrier 2; load l ];
        [ barrier 1; barrier 2 ];
      ]
  in
  let r = run programs in
  Alcotest.(check int) "two invalidations" 2 r.System.stats.Run_stats.invals_sent

let test_ownership_transfer () =
  let l = line ~home:0 0 in
  let programs =
    programs_of
      [
        [ Types.Barrier 1; Types.Barrier 2 ];
        [ store l; Types.Barrier 1; Types.Barrier 2 ];
        [ Types.Barrier 1; store l; Types.Barrier 2 ];
        [ Types.Barrier 1; Types.Barrier 2; load l ];
      ]
  in
  let r = run programs in
  (* the second write transfers ownership from node 1 to node 2 *)
  Alcotest.(check bool) "transfer happened" true
    (Pcc_stats.Counter.get r.System.stats.Run_stats.message_classes "transfer" >= 1);
  (* the final read must observe node 2's write *)
  Alcotest.(check int) "still coherent" 0 r.System.violations

let test_value_propagation () =
  (* ping-pong writes: each reader must see the latest committed value;
     the memory checker validates every load *)
  let l = line ~home:0 0 in
  let epochs = 10 in
  let programs =
    Array.init 4 (fun node ->
        List.concat
          (List.init epochs (fun e ->
               let writer = e mod 4 in
               let ops = if node = writer then [ store l ] else [] in
               ops @ [ Types.Barrier (e + 1); load l; Types.Barrier (1000 + e) ])))
  in
  let r = run programs in
  Alcotest.(check int) "loads all checked" (4 * epochs) r.System.stats.Run_stats.loads

let test_reload_flurry_nacks () =
  (* after a barrier, many nodes re-read the same invalidated line: the
     home goes busy and NACKs the losers (the em3d effect, §3.2) *)
  let l = line ~home:0 0 in
  let nodes = 8 in
  let config = Config.base ~nodes () in
  let programs =
    Array.init nodes (fun node ->
        List.concat
          (List.init 6 (fun e ->
               let ops = if node = 1 then [ store l ] else [] in
               ops @ [ Types.Barrier (e + 1); load l; Types.Barrier (100 + e) ])))
  in
  let result = System.run ~config ~programs () in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  Alcotest.(check bool) "NACKs observed" true
    (result.System.stats.Run_stats.nacks_received > 0)

let test_capacity_writeback () =
  (* a tiny L2 forces dirty evictions and writebacks to the home *)
  let config = { (Config.base ~nodes:2 ()) with Config.l2_bytes = 4 * 128; l2_ways = 4 } in
  let lines = List.init 12 (fun i -> line ~home:1 i) in
  let programs = programs_of [ List.map store lines @ List.map load lines; [] ] in
  let result = System.run ~config ~programs () in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  Alcotest.(check (list string)) "invariants" [] result.System.invariant_errors;
  Alcotest.(check bool) "writebacks happened" true
    (result.System.stats.Run_stats.writebacks > 0)

let test_writeback_race_resolution () =
  (* dirty eviction racing with a reader: the home serves the reader from
     the written-back data; nobody deadlocks *)
  let config = { (Config.base ~nodes:3 ()) with Config.l2_bytes = 2 * 128; l2_ways = 2 } in
  let victim_lines = List.init 8 (fun i -> line ~home:0 (100 + i)) in
  let l = line ~home:0 0 in
  let programs =
    programs_of
      [
        [];
        (* write l, then stream over victims to force l's eviction *)
        [ store l ] @ List.map store victim_lines;
        [ Types.Compute 500; load l; load l ];
      ]
  in
  let result = System.run ~config ~programs () in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  Alcotest.(check (list string)) "invariants" [] result.System.invariant_errors

let test_rac_victim_caching () =
  (* RAC-only config: a shared remote line evicted from the tiny L2 is
     recovered from the RAC as a local miss *)
  let config =
    { (Config.rac_only ~nodes:2 ()) with Config.l2_bytes = 2 * 128; l2_ways = 2 }
  in
  let l = line ~home:1 0 in
  let victims = List.init 6 (fun i -> line ~home:0 (50 + i)) in
  let programs = programs_of [ [ load l ] @ List.map load victims @ [ load l ]; [] ] in
  let result = System.run ~config ~programs () in
  Alcotest.(check int) "coherent" 0 result.System.violations;
  Alcotest.(check bool) "RAC hit on re-read" true
    (result.System.stats.Run_stats.rac_hits >= 1)

let test_barrier_synchronization () =
  (* all nodes must leave a barrier only after everyone arrived *)
  let config = Config.base ~nodes:4 () in
  let t = System.create ~config () in
  let programs =
    Array.init 4 (fun node -> [ Types.Compute (node * 1000); Types.Barrier 1 ])
  in
  let result = System.run_programs t programs in
  Alcotest.(check bool) "finishes after slowest + barrier latency" true
    (result.System.cycles >= 3000 + config.Config.barrier_latency)

let test_sim_drains () =
  let l = line ~home:0 5 in
  let r = run (programs_of [ [ store l ]; [ load l ]; [ load l ]; [ load l ] ]) in
  Alcotest.(check bool) "drained" true (r.System.outcome = Pcc_engine.Simulator.Drained)

let test_deterministic_runs () =
  let app = Pcc_workload.Apps.em3d in
  let programs = Pcc_workload.Apps.programs app ~scale:0.1 ~nodes:8 () in
  let config = Config.small_full ~nodes:8 () in
  let a = System.run ~config ~programs () in
  let b = System.run ~config ~programs () in
  Alcotest.(check int) "same cycles" a.System.cycles b.System.cycles;
  Alcotest.(check int) "same messages" a.System.network_messages b.System.network_messages

let suite =
  [
    Alcotest.test_case "local access" `Quick test_local_access;
    Alcotest.test_case "remote read 2-hop" `Quick test_remote_read_is_2hop;
    Alcotest.test_case "dirty remote read 3-hop" `Quick test_dirty_remote_read_is_3hop;
    Alcotest.test_case "write invalidates sharers" `Quick test_write_invalidates_sharers;
    Alcotest.test_case "ownership transfer" `Quick test_ownership_transfer;
    Alcotest.test_case "value propagation" `Quick test_value_propagation;
    Alcotest.test_case "reload flurry NACKs" `Quick test_reload_flurry_nacks;
    Alcotest.test_case "capacity writebacks" `Quick test_capacity_writeback;
    Alcotest.test_case "writeback race" `Quick test_writeback_race_resolution;
    Alcotest.test_case "RAC victim caching" `Quick test_rac_victim_caching;
    Alcotest.test_case "barrier synchronization" `Quick test_barrier_synchronization;
    Alcotest.test_case "simulation drains" `Quick test_sim_drains;
    Alcotest.test_case "deterministic runs" `Quick test_deterministic_runs;
  ]
