examples/protocol_trace.mli:
