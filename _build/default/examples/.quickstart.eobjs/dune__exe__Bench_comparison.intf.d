examples/bench_comparison.mli:
