examples/verify_protocol.mli:
