examples/bench_comparison.ml: Array Config Format List Pcc_core Pcc_stats Pcc_workload Printf Run_stats Sys System
