examples/quickstart.ml: Array Config Format List Pcc_core Run_stats System Types
