examples/verify_protocol.ml: Array Format Pcc_mcheck Sys
