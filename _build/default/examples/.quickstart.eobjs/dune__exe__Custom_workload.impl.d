examples/custom_workload.ml: Config Format Fun List Pcc_core Pcc_workload Run_stats System
