examples/quickstart.mli:
