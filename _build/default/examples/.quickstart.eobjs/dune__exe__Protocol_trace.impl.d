examples/protocol_trace.ml: Array Config Format List Message Node Pcc_core System Types
