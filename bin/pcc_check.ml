(* Command-line verification driver (the paper's §2.5, scaled up).

   Two modes:
   - exhaustive model checking of the abstract protocol model
       dune exec bin/pcc_check.exe -- --nodes 4 --lines 2 --ops 1 --jobs 4
   - the litmus corpus against the real simulator
       dune exec bin/pcc_check.exe -- --litmus --jobs 4 *)

open Cmdliner
module Checker = Pcc.Checker
module Model = Pcc.Protocol_model
module Litmus = Pcc.Litmus

let bug_of_string = function
  | "" -> Ok None
  | "skip-invals" -> Ok (Some Model.Skip_invals_on_delegate)
  | "no-poison" -> Ok (Some Model.No_poison_on_inval)
  | "no-resharing" -> Ok (Some Model.Updates_without_resharing)
  | other -> Error (Printf.sprintf "unknown bug %S" other)

let workload_of_string = function
  | "symmetric" -> Ok Model.Symmetric
  | "pc" | "producer-consumer" -> Ok Model.Producer_consumer
  | other ->
      Error
        (Printf.sprintf
           "unknown model workload %S; valid patterns: symmetric, pc \
            (producer-consumer).  pcc_check verifies abstract access patterns — \
            simulator workload specs (em3d, kv:skew=1.2, ...) belong to pcc_sim \
            and friends."
           other)

(* Checker counters for --metrics: every outcome carries stats. *)
let checker_metrics registry (stats : Pcc.Checker.stats) ~violations ~deadlocks =
  let module R = Pcc.Telemetry.Registry in
  R.counter registry "pcc_check_states_explored" stats.Pcc.Checker.states_explored;
  R.counter registry "pcc_check_transitions" stats.Pcc.Checker.transitions;
  R.gauge registry "pcc_check_max_depth" stats.Pcc.Checker.max_depth;
  R.gauge registry "pcc_check_complete" (if stats.Pcc.Checker.complete then 1 else 0);
  R.counter registry "pcc_check_invariant_violations" violations;
  R.counter registry "pcc_check_deadlocks" deadlocks

let snoop_bug_of_string = function
  | "" -> Ok None
  | "upgr-skips-invals" -> Ok (Some Pcc.Snoop_model.Upgr_skips_invals)
  | other ->
      Error
        (Printf.sprintf "unknown snooping bug %S (expected upgr-skips-invals)" other)

let report_outcome pp outcome metrics_path =
  Format.printf "%a@." (Checker.pp_outcome pp) outcome;
  Cli_common.write_metrics metrics_path (fun registry ->
      match outcome with
      | Checker.Ok stats -> checker_metrics registry stats ~violations:0 ~deadlocks:0
      | Checker.Invariant_violation { stats; _ } ->
          checker_metrics registry stats ~violations:1 ~deadlocks:0
      | Checker.Deadlock { stats; _ } ->
          checker_metrics registry stats ~violations:0 ~deadlocks:1);
  match outcome with Checker.Ok _ -> 0 | _ -> 2

let run_model_check protocol nodes lines ops workload delegation updates bug max_states
    jobs spill por metrics_path =
  match protocol with
  | Pcc.Types.Msi | Pcc.Types.Mesi -> (
      match snoop_bug_of_string bug with
      | Error message ->
          prerr_endline message;
          1
      | Ok bug ->
          let params =
            {
              Pcc.Snoop_model.nodes;
              lines;
              variant = protocol;
              max_ops_per_node = ops;
              bug;
            }
          in
          let (module M) = Pcc.Snoop_model.make ~por params in
          let outcome = Checker.run (module M) ~max_states ~jobs ?spill () in
          report_outcome M.pp outcome metrics_path)
  | Pcc.Types.Adaptive -> (
      match (bug_of_string bug, workload_of_string workload) with
      | Error message, _ | _, Error message ->
          prerr_endline message;
          2
      | Ok bug, Ok workload ->
          let params =
            {
              Model.default_params with
              Model.nodes;
              lines;
              workload;
              max_ops_per_node = ops;
              enable_delegation = delegation;
              enable_updates = updates;
              bug;
            }
          in
          let (module M) = Model.make ~por params in
          let outcome = Checker.run (module M) ~max_states ~jobs ?spill () in
          report_outcome M.pp outcome metrics_path)

let run_litmus jobs mutate protocol metrics_path =
  let results =
    if mutate then
      (* detection sanity check: the corpus must fail against the broken
         machine — the adaptive fault or the snooping one *)
      let configs =
        match protocol with
        | Pcc.Types.Adaptive -> [ ("mutated-updates", Litmus.mutation_config) ]
        | Pcc.Types.Msi | Pcc.Types.Mesi ->
            [ ("mutated-msi-snoop", Litmus.snoop_mutation_config) ]
      in
      Litmus.run_matrix ~jobs ~configs
        ~profiles:[ ("reliable", fun ~seed:_ -> None) ]
        ~seeds:[ 1 ] Litmus.corpus
    else
      match protocol with
      | Pcc.Types.Adaptive -> Litmus.run_matrix ~jobs Litmus.corpus
      | p -> Litmus.run_matrix ~jobs ~configs:(Litmus.snoop_configs p) Litmus.corpus
  in
  List.iter (fun r -> Format.printf "%a@." Litmus.pp_result r) results;
  let failed = Litmus.failures results in
  Cli_common.write_metrics metrics_path (fun registry ->
      let module R = Pcc.Telemetry.Registry in
      R.counter registry "pcc_litmus_runs" (List.length results);
      R.counter registry "pcc_litmus_failures" (List.length failed));
  if mutate then
    if failed = [] then begin
      Format.printf "mutation NOT detected: %d runs all passed@." (List.length results);
      2
    end
    else begin
      Format.printf "mutation detected in %d/%d runs@." (List.length failed)
        (List.length results);
      0
    end
  else begin
    Format.printf "%d runs, %d failures@." (List.length results) (List.length failed);
    if failed = [] then 0 else 2
  end

let run litmus mutate protocol nodes lines ops workload delegation updates bug
    max_states jobs spill por metrics_path =
  if litmus || mutate then run_litmus jobs mutate protocol metrics_path
  else
    run_model_check protocol nodes lines ops workload delegation updates bug max_states
      jobs spill por metrics_path

let nodes_arg = Cli_common.nodes ~default:3 ~doc:"Nodes in the model." ()

let lines_arg =
  Arg.(
    value
    & opt int 1
    & info [ "lines" ] ~docv:"N"
        ~doc:
          "Independent cache lines in the model.  Lines multiply the state space; \
           partial-order reduction keeps it tractable.")

let ops_arg =
  Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Memory operations per node (per line).")

let workload_arg =
  Arg.(
    value
    & opt string "symmetric"
    & info [ "workload" ] ~docv:"KIND"
        ~doc:
          "Abstract access pattern for the model (not a simulator workload \
           spec): $(b,symmetric) (every node loads and stores) or $(b,pc) \
           (producer-consumer: one designated writer per line, everyone else reads — \
           the paper's pattern; much smaller per-line spaces).")

let delegation_arg =
  Arg.(value & opt bool true & info [ "delegation" ] ~doc:"Enable directory delegation.")

let updates_arg =
  Arg.(value & opt bool true & info [ "updates" ] ~doc:"Enable speculative updates.")

let bug_arg =
  Arg.(
    value
    & opt string ""
    & info [ "bug" ] ~doc:"Inject a protocol bug: skip-invals, no-poison, no-resharing.")

let max_states_arg = Cli_common.max_states ()

let jobs_arg = Cli_common.jobs ~what:"frontier chunks (or litmus runs)" ()

let spill_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill" ] ~docv:"DIR"
        ~doc:
          "Spill the visited set and counterexample edges to $(docv) so memory stays \
           bounded by the frontier.")

let por_arg =
  Arg.(
    value
    & opt bool true
    & info [ "por" ]
        ~doc:"Partial-order reduction over independent lines (only matters with --lines > 1).")

let litmus_arg =
  Arg.(
    value
    & flag
    & info [ "litmus" ]
        ~doc:
          "Run the litmus corpus through the real simulator (configs × chaos profiles × \
           seeds) instead of model checking.")

let mutate_arg =
  Arg.(
    value
    & flag
    & info [ "litmus-mutated" ]
        ~doc:
          "Run the litmus corpus against a deliberately broken machine and require a \
           failure (harness detection sanity check).")

let cmd =
  let term =
    Term.(
      const run $ litmus_arg $ mutate_arg
      $ Cli_common.protocol
          ~doc:
            "Which backend to verify: $(b,adaptive) checks the directory-protocol \
             model (or the full litmus matrix, every backend included); $(b,msi) / \
             $(b,mesi) check the atomic-bus snooping model (bug: \
             $(b,upgr-skips-invals)) or restrict the litmus matrix to that backend." ()
      $ nodes_arg $ lines_arg $ ops_arg
      $ workload_arg $ delegation_arg $ updates_arg $ bug_arg $ max_states_arg
      $ jobs_arg $ spill_arg $ por_arg $ Cli_common.metrics ())
  in
  Cmd.v
    (Cmd.info "pcc_check" ~doc:"Verify the coherence protocol backends") term

let () = exit (Cmd.eval' cmd)
