(* Command-line model-checking driver (the paper's §2.5 verification).

     dune exec bin/pcc_check.exe -- --nodes 3 --ops 2 *)

open Cmdliner
module Checker = Pcc.Checker
module Model = Pcc.Protocol_model

let bug_of_string = function
  | "" -> Ok None
  | "skip-invals" -> Ok (Some Model.Skip_invals_on_delegate)
  | "no-poison" -> Ok (Some Model.No_poison_on_inval)
  | "no-resharing" -> Ok (Some Model.Updates_without_resharing)
  | other -> Error (Printf.sprintf "unknown bug %S" other)

let run nodes ops delegation updates bug max_states =
  match bug_of_string bug with
  | Error message ->
      prerr_endline message;
      1
  | Ok bug ->
      let params =
        {
          Model.default_params with
          Model.nodes;
          max_ops_per_node = ops;
          enable_delegation = delegation;
          enable_updates = updates;
          bug;
        }
      in
      let (module M) = Model.make params in
      let outcome = Checker.run (module M) ~max_states () in
      Format.printf "%a@." (Checker.pp_outcome M.pp) outcome;
      (match outcome with Checker.Ok _ -> 0 | _ -> 2)

let nodes_arg = Cli_common.nodes ~default:3 ~doc:"Nodes in the model." ()

let ops_arg = Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Memory operations per node.")

let delegation_arg =
  Arg.(value & opt bool true & info [ "delegation" ] ~doc:"Enable directory delegation.")

let updates_arg =
  Arg.(value & opt bool true & info [ "updates" ] ~doc:"Enable speculative updates.")

let bug_arg =
  Arg.(
    value
    & opt string ""
    & info [ "bug" ]
        ~doc:"Inject a protocol bug: skip-invals, no-poison, no-resharing.")

let max_states_arg =
  Arg.(value & opt int 3_000_000 & info [ "max-states" ] ~doc:"Exploration bound.")

let cmd =
  let term =
    Term.(
      const run $ nodes_arg $ ops_arg $ delegation_arg $ updates_arg $ bug_arg
      $ max_states_arg)
  in
  Cmd.v
    (Cmd.info "pcc_check" ~doc:"Model-check the adaptive coherence protocol")
    term

let () = exit (Cmd.eval' cmd)
