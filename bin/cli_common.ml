(* Shared cmdliner vocabulary for the six CLIs.

   Every tool speaks the same flags with the same docstrings; defaults
   differ per tool (a chaos sweep wants 6 nodes at scale 0.15, the
   simulator driver wants the paper's 16 at 0.5), so each term takes its
   default as a parameter.  Tool-specific knobs (fault profiles, model
   bounds, output directories) stay in their own executables. *)

open Cmdliner

let nodes ?(default = 16) ?(doc = "Number of nodes.") () =
  Arg.(value & opt int default & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let scale ?(default = 0.5) ?(doc = "Run-length scale.") () =
  Arg.(value & opt float default & info [ "s"; "scale" ] ~docv:"S" ~doc)

let seed ?(default = 1) ?(doc = "Workload seed.") () =
  Arg.(value & opt int default & info [ "seed" ] ~docv:"SEED" ~doc)

let seeds ?(default = 50) ?(doc = "Number of seeds to sweep.") () =
  Arg.(value & opt int default & info [ "seeds" ] ~docv:"N" ~doc)

(* Workload selection: the [--workload NAME[:k=v,...]] spec grammar over
   the Workload registry, with [--app NAME] kept as a warning-emitting
   alias for one release.  Parsing to a Workload.packed happens in
   [resolve_workload] (not an Arg.conv) so unknown names and keys exit 2
   with a suggestion list, mirroring the --protocol loud-rejection
   contract. *)
let workload ?(default = "em3d") () =
  let workload_arg =
    let doc =
      Printf.sprintf
        "Workload spec: $(i,NAME) or $(i,NAME:key=value,...).  Names: %s.  Unknown \
         names and keys are rejected (exit 2)."
        (String.concat ", " (Pcc.Workload.names ()))
    in
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"SPEC" ~doc)
  in
  let app_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "a"; "app" ] ~docv:"APP"
          ~doc:"Deprecated alias for $(b,--workload); emits a warning.")
  in
  let combine w a =
    match (w, a) with
    | Some spec, None -> spec
    | Some spec, Some _ ->
        prerr_endline "warning: --app ignored because --workload was given";
        spec
    | None, Some name ->
        prerr_endline
          "warning: --app is deprecated; use --workload NAME[:key=value,...] instead";
        name
    | None, None -> default
  in
  Term.(const combine $ workload_arg $ app_arg)

let resolve_workload ~tool ~nodes ~scale ~seed spec =
  match Pcc.Workload.of_spec ~nodes ~scale ~seed spec with
  | Ok w -> w
  | Error message ->
      Printf.eprintf "%s: %s\n" tool message;
      exit 2

(* Config/machine selection: pcc_sim calls it --machine, the trace tool
   --config; both mean the same names. *)
let config ?(names = [ "m"; "machine" ]) ?(default = "full")
    ?(doc = "Machine configuration: base, rac, delegation, small/full, large.") () =
  Arg.(value & opt string default & info names ~docv:"MACHINE" ~doc)

(* Backend selection.  The converter rejects unknown names loudly (usage
   error, exit 124) instead of silently falling back to a default — a
   typo like --protocol mosi must never masquerade as an adaptive run. *)
let protocol_conv =
  let parse s =
    match Pcc.Protocol.of_string s with Ok p -> Ok p | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Pcc.Protocol.to_string p))

let protocol
    ?(doc =
      "Coherence backend: $(b,adaptive) (the paper's directory protocol), $(b,msi) or \
       $(b,mesi) (bus snooping).") () =
  Arg.(value & opt protocol_conv Pcc.Protocol.Adaptive & info [ "protocol" ] ~docv:"PROTO" ~doc)

(* [what] names the unit of concurrency in the docstring ("settings",
   "chaotic runs", ...). *)
let jobs ?(what = "runs") () =
  let doc =
    Printf.sprintf
      "Run up to $(docv) %s concurrently (default: PCC_JOBS or available cores; 1 = \
       sequential).  Results are bit-identical at every level."
      what
  in
  Arg.(value & opt int (Pcc.Pool.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let json ?(doc = "Write machine-readable results to $(docv).") () =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

let metrics ?(doc_suffix = "") () =
  let doc =
    "Write a unified metrics snapshot to $(docv) on exit: $(b,*.json) gets the \
     JSON registry snapshot, any other extension the OpenMetrics text \
     exposition.  Deterministic: sorted by (name, labels) and byte-identical \
     at every --jobs level." ^ doc_suffix
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"PATH" ~doc)

(* Every tool funnels its exit through this: build the registry only when
   the user asked for the file, so default runs stay write-free. *)
let write_metrics path fill =
  match path with
  | None -> ()
  | Some path ->
      let registry = Pcc.Telemetry.Registry.create () in
      fill registry;
      Pcc.Telemetry.Registry.add_pool registry;
      Pcc.Telemetry.Registry.write registry ~path

let max_events ?(default = 50_000_000) ?(doc = "Event budget per run.") () =
  Arg.(value & opt int default & info [ "max-events" ] ~docv:"N" ~doc)

let max_states ?(default = 3_000_000) ?(doc = "Model-checker exploration bound (states).")
    () =
  Arg.(value & opt int default & info [ "max-states" ] ~docv:"N" ~doc)

let verbose ~doc () = Arg.(value & flag & info [ "v"; "verbose" ] ~doc)
