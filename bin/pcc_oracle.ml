(* Differential-oracle driver: run seeded random and benchmark workloads
   with the online coherence auditor attached, then replay each run's
   serialized operations through the model checker and compare.

     dune exec bin/pcc_oracle.exe -- --seeds 50
     dune exec bin/pcc_oracle.exe -- --inject-fault --trace fault.jsonl
     dune exec bin/pcc_oracle.exe -- --replay fault.jsonl *)

open Cmdliner
open Pcc

let bench_rotation = [| "random"; "barnes"; "ocean"; "em3d"; "lu"; "cg"; "mg"; "appbt" |]

let configs = [ "base"; "full" ]

let descs_for_seed ~workload_pin ~configs ~nodes ~scale seed :
    Oracle.Trace.run_desc list =
  (* every seed runs the random workload plus one rotating app benchmark,
     each under both the baseline and the fully adaptive machine (or the
     selected snooping backend); --workload pins a single spec instead *)
  let benches =
    match workload_pin with
    | Some spec -> [ spec ]
    | None ->
        [
          "random";
          bench_rotation.(1 + ((seed - 1) mod (Array.length bench_rotation - 1)));
        ]
  in
  List.concat_map
    (fun bench ->
      List.map
        (fun config_name ->
          { Oracle.Trace.bench; config_name; nodes; scale; seed; fault = false })
        configs)
    benches

let describe (d : Oracle.Trace.run_desc) =
  Printf.sprintf "seed=%d bench=%s config=%s nodes=%d scale=%.2f%s" d.seed d.bench
    d.config_name d.nodes d.scale
    (if d.fault then " FAULT" else "")

let report_failure ~trace ~artifact_written (report : Oracle.Runner.report) =
  Printf.printf "FAIL %s\n" (describe report.desc);
  List.iter (fun v -> Printf.printf "  %s\n" v) report.violations;
  if not !artifact_written then begin
    Oracle.Runner.save_artifact ~path:trace report;
    artifact_written := true;
    Printf.printf "  trace written to %s\n" trace
  end

let run_sweep ~workload_pin ~seeds ~protocol ~nodes ~scale ~max_lines ~trace
    ~metrics_path =
  let configs =
    match protocol with
    | Types.Adaptive -> configs
    | p -> [ Protocol.to_string p ]
  in
  let failures = ref 0 in
  let runs = ref 0 in
  let ops = ref 0 in
  let steps = ref 0 in
  let artifact_written = ref false in
  let results = ref [] in
  for seed = 1 to seeds do
    List.iter
      (fun desc ->
        incr runs;
        let report = Oracle.Runner.run ~max_lines desc in
        (match report.result with
        | Some r -> results := r :: !results
        | None -> ());
        (match report.diff with
        | Some o ->
            ops := !ops + o.Oracle.Diff.ops_replayed;
            steps := !steps + o.Oracle.Diff.model_steps
        | None -> ());
        if not (Oracle.Runner.clean report) then begin
          incr failures;
          report_failure ~trace ~artifact_written report
        end)
      (descs_for_seed ~workload_pin ~configs ~nodes ~scale seed)
  done;
  Printf.printf "%d runs, %d failures; %d ops replayed through the model (%d steps)\n"
    !runs !failures !ops !steps;
  Cli_common.write_metrics metrics_path (fun registry ->
      let module R = Telemetry.Registry in
      List.iter
        (fun r -> R.add_result ~summaries:false registry r)
        (List.rev !results);
      R.counter registry "pcc_oracle_runs" !runs;
      R.counter registry "pcc_oracle_failures" !failures;
      R.counter registry "pcc_oracle_ops_replayed" !ops;
      R.counter registry "pcc_oracle_model_steps" !steps);
  if !failures = 0 then 0 else 1

let run_fault ~nodes ~scale ~trace =
  (* the injected stale-update fault must be caught, with a replayable
     artifact — this is the oracle's own smoke test.  Not every seed's
     workload pushes an update into the window the fault corrupts, so try
     a handful; one catch is a pass. *)
  let rec attempt seed =
    if seed > 10 then begin
      Printf.printf "FAULT NOT CAUGHT in 10 seeds\n";
      1
    end
    else
      let desc =
        { Oracle.Trace.bench = "random"; config_name = "full"; nodes; scale; seed;
          fault = true }
      in
      let report = Oracle.Runner.run ~diff:false desc in
      if Oracle.Runner.clean report then attempt (seed + 1)
      else begin
        Oracle.Runner.save_artifact ~path:trace report;
        Printf.printf "fault caught on %s\n" (describe desc);
        List.iter (fun v -> Printf.printf "  %s\n" v) report.violations;
        Printf.printf "  %d recent events in the trace; artifact: %s\n"
          (List.length report.events) trace;
        0
      end
  in
  attempt 1

let run_replay ~max_lines ~path =
  match Oracle.Trace.read_desc ~path with
  | Error message ->
      Printf.eprintf "cannot replay %s: %s\n" path message;
      2
  | Ok desc ->
      Printf.printf "replaying %s\n" (describe desc);
      let report = Oracle.Runner.run ~max_lines desc in
      if Oracle.Runner.clean report then begin
        Printf.printf "clean — failure did not reproduce\n";
        0
      end
      else begin
        List.iter (fun v -> Printf.printf "  %s\n" v) report.violations;
        List.iter
          (fun e -> Format.printf "  %a@." Oracle.Trace.pp_event e)
          report.events;
        1
      end

let run_golden ~nodes ~scale ~seed =
  (* print the pinned-statistics table in the exact form test_golden.ml
     embeds, for regeneration after an intentional protocol change *)
  List.iter
    (fun config_name ->
      List.iter
        (fun (app : Workloads.app) ->
          let desc =
            { Oracle.Trace.bench = app.name; config_name; nodes; scale; seed;
              fault = false }
          in
          let config = Oracle.Trace.config_of_desc desc in
          let programs = Oracle.Trace.programs_of_desc desc in
          let result = System.run ~config ~programs () in
          let s = result.System.stats in
          Printf.printf "    (%S, %S, (%d, %d, %d, %d, %d, %d));\n"
            (String.lowercase_ascii app.name)
            config_name s.Run_stats.local_mem_misses s.Run_stats.rac_hits
            s.Run_stats.remote_2hop s.Run_stats.remote_3hop s.Run_stats.delegations
            s.Run_stats.updates_sent)
        Workloads.all)
    configs;
  0

let main workload_pin seeds protocol nodes scale max_lines trace replay
    inject_fault golden metrics_path =
  let pin_error =
    match workload_pin with
    | None -> None
    | Some spec -> (
        match Workload.of_spec ~nodes ~scale ~seed:1 spec with
        | Ok _ -> None
        | Error message -> Some message)
  in
  match pin_error with
  | Some message ->
      Printf.eprintf "pcc_oracle: %s\n" message;
      2
  | None ->
      if nodes < 2 then begin
        Printf.eprintf "pcc_oracle: --nodes must be at least 2 (got %d)\n" nodes;
        2
      end
      else if golden then run_golden ~nodes:8 ~scale ~seed:7
      else (
        match replay with
        | Some path -> run_replay ~max_lines ~path
        | None ->
            if inject_fault then run_fault ~nodes ~scale ~trace
            else
              run_sweep ~workload_pin ~seeds ~protocol ~nodes ~scale ~max_lines
                ~trace ~metrics_path)

let max_lines_arg =
  Arg.(
    value & opt int 400
    & info [ "max-lines" ] ~docv:"N" ~doc:"Cap on lines replayed through the model.")

let trace_arg =
  Arg.(
    value
    & opt string "oracle-fault.jsonl"
    & info [ "trace" ] ~docv:"FILE" ~doc:"Where to write the first failure artifact.")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE" ~doc:"Re-run the descriptor in a trace file.")

let fault_arg =
  Arg.(
    value & flag
    & info [ "inject-fault" ]
        ~doc:"Inject the stale-update protocol fault and verify the oracle catches it.")

let golden_arg =
  Arg.(
    value & flag
    & info [ "golden" ] ~doc:"Print the golden-statistics table for test_golden.ml.")

let workload_pin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"SPEC"
        ~doc:
          "Pin every sweep run to one workload spec \
           ($(i,NAME) or $(i,NAME:key=value,...)) instead of the \
           random + rotating-benchmark pair per seed.")

let cmd =
  let term =
    Term.(
      const main $ workload_pin_arg $ Cli_common.seeds ()
      $ Cli_common.protocol
          ~doc:
            "Coherence backend for the sweep: $(b,adaptive) audits base+full with \
             the differential replay, $(b,msi)/$(b,mesi) run the order tracker and \
             statistics identities over the snooping machine." ()
      $ Cli_common.nodes ~default:6 ()
      $ Cli_common.scale ~default:0.15 ~doc:"Run-length scale for app benchmarks." ()
      $ max_lines_arg $ trace_arg $ replay_arg $ fault_arg $ golden_arg
      $ Cli_common.metrics
          ~doc_suffix:" (sweep mode only; other modes ignore the flag)" ())
  in
  Cmd.v
    (Cmd.info "pcc_oracle"
       ~doc:"Differential coherence oracle: audited simulation vs. model checker")
    term

let () = exit (Cmd.eval' cmd)
