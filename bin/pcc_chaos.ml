(* Seeded chaos sweeps: run workloads over a deliberately unreliable
   interconnect — packets dropped, duplicated, delayed, reordered, links
   taken down transiently — with the online coherence oracle attached.
   A sweep passes only if every run quiesces with every operation
   committed and zero oracle violations, and the recovery machinery was
   actually exercised (nonzero retransmit / duplicate-drop counters).

     dune exec bin/pcc_chaos.exe -- --seeds 34
     dune exec bin/pcc_chaos.exe -- --profile storm --seeds 5 --verbose *)

open Cmdliner
open Pcc_core
module Oracle = Pcc_oracle
module Fault = Pcc_interconnect.Fault

let bench_rotation = [| "barnes"; "ocean"; "em3d"; "lu"; "cg"; "mg"; "appbt" |]

let count_accesses programs =
  Array.fold_left
    (fun acc ops ->
      List.fold_left
        (fun acc op ->
          match op with Types.Access _ -> acc + 1 | Types.Compute _ | Types.Barrier _ -> acc)
        acc ops)
    0 programs

type tally = {
  mutable runs : int;
  mutable failures : int;
  mutable retransmits : int;
  mutable dup_dropped : int;
  mutable txn_timeouts : int;
  mutable fallbacks : int;
  mutable injected_drops : int;
  mutable injected_dups : int;
  mutable injected_delays : int;
  mutable injected_outages : int;
}

let tally () =
  {
    runs = 0;
    failures = 0;
    retransmits = 0;
    dup_dropped = 0;
    txn_timeouts = 0;
    fallbacks = 0;
    injected_drops = 0;
    injected_dups = 0;
    injected_delays = 0;
    injected_outages = 0;
  }

(* Failure reasons for one chaotic run; empty list = the run survived. *)
let check_run ~total_ops ~committed (result : System.result) =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match result.stall with
  | None -> ()
  | Some stall ->
      add "did not quiesce: %s"
        (Format.asprintf "%a" System.pp_stall_report stall));
  if committed <> total_ops then
    add "committed %d of %d operations" committed total_ops;
  if result.violations > 0 then add "%d memory-check violations" result.violations;
  (match result.invariant_errors with
  | [] -> ()
  | errs -> add "%d invariant errors (first: %s)" (List.length errs) (List.hd errs));
  List.rev !problems

let run_one t ~verbose ~bench ~config_name ~nodes ~scale ~seed ~profile_name
    ~txn_timeout ~fallback_threshold ~max_events =
  let desc =
    { Oracle.Trace.bench; config_name; nodes; scale; seed; fault = false }
  in
  (* independent chaos stream per (seed, profile, bench): the workload RNG
     stays pinned by [seed] alone, so the same traffic meets different
     fault schedules *)
  let chaos_seed = (seed * 8191) + Hashtbl.hash (profile_name, bench) in
  let profile =
    match Fault.preset profile_name ~seed:chaos_seed with
    | Some p -> p
    | None ->
        raise
          (Invalid_argument (Printf.sprintf "unknown fault profile %S" profile_name))
  in
  let config =
    {
      (Oracle.Trace.config_of_desc desc) with
      Config.net_faults = Some profile;
      txn_timeout;
      fallback_threshold;
    }
  in
  let programs = Oracle.Trace.programs_of_desc desc in
  let total_ops = count_accesses programs in
  let sys = System.create ~config () in
  let _audit = Oracle.Audit.attach sys in
  let committed = ref 0 in
  System.on_commit sys (fun _ -> incr committed);
  t.runs <- t.runs + 1;
  let problems =
    match System.run_programs ~max_events sys programs with
    | exception Oracle.Audit.Violation { message; time; _ } ->
        [ Printf.sprintf "oracle violation at t=%d: %s" time message ]
    | result ->
        let stats = result.System.stats in
        t.retransmits <- t.retransmits + stats.Run_stats.retransmits;
        t.dup_dropped <- t.dup_dropped + stats.Run_stats.dup_dropped;
        t.txn_timeouts <- t.txn_timeouts + stats.Run_stats.txn_timeouts;
        t.fallbacks <- t.fallbacks + stats.Run_stats.fallbacks;
        (match System.fault_stats sys with
        | Some f ->
            t.injected_drops <- t.injected_drops + f.Fault.dropped;
            t.injected_dups <- t.injected_dups + f.Fault.duplicated;
            t.injected_delays <- t.injected_delays + f.Fault.delayed;
            t.injected_outages <- t.injected_outages + f.Fault.outages_started
        | None -> ());
        let stats_errors =
          List.map (fun e -> "stats: " ^ e) (Oracle.Stats_check.check sys result)
        in
        check_run ~total_ops ~committed:!committed result @ stats_errors
  in
  match problems with
  | [] ->
      if verbose then
        Printf.printf "ok   seed=%d profile=%-7s bench=%-6s config=%s (%d ops)\n%!"
          seed profile_name bench config_name total_ops
  | problems ->
      t.failures <- t.failures + 1;
      Printf.printf "FAIL seed=%d profile=%s bench=%s config=%s\n" seed profile_name
        bench config_name;
      List.iter (fun p -> Printf.printf "  %s\n%!" p) problems

let main seeds nodes scale profile_filter txn_timeout fallback_threshold max_events
    verbose =
  if nodes < 2 then begin
    Printf.eprintf "pcc_chaos: --nodes must be at least 2 (got %d)\n" nodes;
    2
  end
  else begin
    let profiles =
      match profile_filter with
      | Some name -> [ name ]
      | None -> List.map fst Fault.presets
    in
    let t = tally () in
    for seed = 1 to seeds do
      let benches =
        [ "random"; bench_rotation.((seed - 1) mod Array.length bench_rotation) ]
      in
      List.iter
        (fun profile_name ->
          List.iter
            (fun bench ->
              run_one t ~verbose ~bench ~config_name:"full" ~nodes ~scale ~seed
                ~profile_name ~txn_timeout ~fallback_threshold ~max_events)
            benches)
        profiles
    done;
    Printf.printf
      "%d chaotic runs, %d failures\n\
       injected: %d drops, %d duplicates, %d delays, %d outages\n\
       recovered: %d retransmits, %d duplicates dropped, %d txn timeouts, %d fallbacks\n"
      t.runs t.failures t.injected_drops t.injected_dups t.injected_delays
      t.injected_outages t.retransmits t.dup_dropped t.txn_timeouts t.fallbacks;
    if t.failures > 0 then 1
    else if t.retransmits = 0 || t.dup_dropped = 0 then begin
      (* a sweep that never had to recover proves nothing *)
      Printf.printf "SWEEP TOO QUIET: recovery machinery never exercised\n";
      1
    end
    else 0
  end

let seeds_arg =
  Arg.(
    value & opt int 34
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Seeds per fault profile (each seed runs 2 benchmarks).")

let nodes_arg =
  Arg.(value & opt int 6 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let scale_arg =
  Arg.(
    value & opt float 0.15
    & info [ "s"; "scale" ] ~docv:"S" ~doc:"Run-length scale for app benchmarks.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME"
        ~doc:"Run a single fault profile (drops, storm, outages) instead of all.")

let txn_timeout_arg =
  Arg.(
    value & opt int 2000
    & info [ "txn-timeout" ] ~docv:"CYCLES"
        ~doc:"Initial per-transaction completion timeout.")

let fallback_arg =
  Arg.(
    value & opt int 2
    & info [ "fallback-threshold" ] ~docv:"N"
        ~doc:"Timeout strikes before a line falls back to the base protocol.")

let max_events_arg =
  Arg.(
    value
    & opt int 50_000_000
    & info [ "max-events" ] ~docv:"N" ~doc:"Event budget per run.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each passing run.")

let cmd =
  let term =
    Term.(
      const main $ seeds_arg $ nodes_arg $ scale_arg $ profile_arg $ txn_timeout_arg
      $ fallback_arg $ max_events_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "pcc_chaos"
       ~doc:
         "Seeded chaos sweeps: coherence under an unreliable interconnect with the \
          online oracle attached")
    term

let () = exit (Cmd.eval' cmd)
