(* Seeded chaos sweeps: run workloads over a deliberately unreliable
   interconnect — packets dropped, duplicated, delayed, reordered, links
   taken down transiently — with the online coherence oracle attached.
   A sweep passes only if every run quiesces with every operation
   committed and zero oracle violations, and the recovery machinery was
   actually exercised (nonzero retransmit / duplicate-drop counters).

   Seeds are independent simulations, so the sweep fans out across
   domains (--jobs N / PCC_JOBS; 1 = sequential).  Workers never print:
   each run returns a report and the main domain prints them in
   submission order, so output and the --json artifact are bit-identical
   at every jobs level.

     dune exec bin/pcc_chaos.exe -- --seeds 34
     dune exec bin/pcc_chaos.exe -- --profile storm --seeds 5 --verbose *)

open Cmdliner
open Pcc

let bench_rotation = [| "barnes"; "ocean"; "em3d"; "lu"; "cg"; "mg"; "appbt" |]

let count_accesses programs =
  Array.fold_left
    (fun acc ops ->
      List.fold_left
        (fun acc op ->
          match op with Types.Access _ -> acc + 1 | Types.Compute _ | Types.Barrier _ -> acc)
        acc ops)
    0 programs

type tally = {
  mutable runs : int;
  mutable failures : int;
  mutable retransmits : int;
  mutable dup_dropped : int;
  mutable txn_timeouts : int;
  mutable fallbacks : int;
  mutable injected_drops : int;
  mutable injected_dups : int;
  mutable injected_delays : int;
  mutable injected_outages : int;
}

let tally () =
  {
    runs = 0;
    failures = 0;
    retransmits = 0;
    dup_dropped = 0;
    txn_timeouts = 0;
    fallbacks = 0;
    injected_drops = 0;
    injected_dups = 0;
    injected_delays = 0;
    injected_outages = 0;
  }

(* Failure reasons for one chaotic run; empty list = the run survived. *)
let check_run ~total_ops ~committed (result : System.result) =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match result.stall with
  | None -> ()
  | Some stall ->
      add "did not quiesce: %s"
        (Format.asprintf "%a" System.pp_stall_report stall));
  if committed <> total_ops then
    add "committed %d of %d operations" committed total_ops;
  if result.violations > 0 then add "%d memory-check violations" result.violations;
  (match result.invariant_errors with
  | [] -> ()
  | errs -> add "%d invariant errors (first: %s)" (List.length errs) (List.hd errs));
  List.rev !problems

(* Everything one chaotic run reports back to the main domain. *)
type run_report = {
  rr_seed : int;
  rr_profile : string;
  rr_bench : string;
  rr_config : string;
  rr_total_ops : int;
  rr_problems : string list;
  rr_retransmits : int;
  rr_dup_dropped : int;
  rr_txn_timeouts : int;
  rr_fallbacks : int;
  rr_injected_drops : int;
  rr_injected_dups : int;
  rr_injected_delays : int;
  rr_injected_outages : int;
}

let run_one ~bench ~config_name ~nodes ~scale ~seed ~profile_name ~txn_timeout
    ~fallback_threshold ~max_events =
  let desc =
    { Oracle.Trace.bench; config_name; nodes; scale; seed; fault = false }
  in
  (* independent chaos stream per (seed, profile, bench): the workload RNG
     stays pinned by [seed] alone, so the same traffic meets different
     fault schedules *)
  let chaos_seed = (seed * 8191) + Hashtbl.hash (profile_name, bench) in
  let profile =
    match Fault.preset profile_name ~seed:chaos_seed with
    | Some p -> p
    | None ->
        raise
          (Invalid_argument (Printf.sprintf "unknown fault profile %S" profile_name))
  in
  let config =
    {
      (Oracle.Trace.config_of_desc desc) with
      Config.net_faults = Some profile;
      txn_timeout;
      fallback_threshold;
    }
  in
  let programs = Oracle.Trace.programs_of_desc desc in
  let total_ops = count_accesses programs in
  let sys = System.create ~config () in
  let _audit = Oracle.Audit.attach sys in
  let committed = ref 0 in
  System.on_commit sys (fun _ -> incr committed);
  let report =
    {
      rr_seed = seed;
      rr_profile = profile_name;
      rr_bench = bench;
      rr_config = config_name;
      rr_total_ops = total_ops;
      rr_problems = [];
      rr_retransmits = 0;
      rr_dup_dropped = 0;
      rr_txn_timeouts = 0;
      rr_fallbacks = 0;
      rr_injected_drops = 0;
      rr_injected_dups = 0;
      rr_injected_delays = 0;
      rr_injected_outages = 0;
    }
  in
  match System.run_programs ~max_events sys programs with
  | exception Oracle.Audit.Violation { message; time; _ } ->
      {
        report with
        rr_problems = [ Printf.sprintf "oracle violation at t=%d: %s" time message ];
      }
  | result ->
      let stats = result.System.stats in
      let drops, dups, delays, outages =
        match System.fault_stats sys with
        | Some f -> (f.Fault.dropped, f.Fault.duplicated, f.Fault.delayed, f.Fault.outages_started)
        | None -> (0, 0, 0, 0)
      in
      let stats_errors =
        List.map (fun e -> "stats: " ^ e) (Oracle.Stats_check.check sys result)
      in
      {
        report with
        rr_problems = check_run ~total_ops ~committed:!committed result @ stats_errors;
        rr_retransmits = stats.Run_stats.retransmits;
        rr_dup_dropped = stats.Run_stats.dup_dropped;
        rr_txn_timeouts = stats.Run_stats.txn_timeouts;
        rr_fallbacks = stats.Run_stats.fallbacks;
        rr_injected_drops = drops;
        rr_injected_dups = dups;
        rr_injected_delays = delays;
        rr_injected_outages = outages;
      }

let absorb t (r : run_report) =
  t.runs <- t.runs + 1;
  if r.rr_problems <> [] then t.failures <- t.failures + 1;
  t.retransmits <- t.retransmits + r.rr_retransmits;
  t.dup_dropped <- t.dup_dropped + r.rr_dup_dropped;
  t.txn_timeouts <- t.txn_timeouts + r.rr_txn_timeouts;
  t.fallbacks <- t.fallbacks + r.rr_fallbacks;
  t.injected_drops <- t.injected_drops + r.rr_injected_drops;
  t.injected_dups <- t.injected_dups + r.rr_injected_dups;
  t.injected_delays <- t.injected_delays + r.rr_injected_delays;
  t.injected_outages <- t.injected_outages + r.rr_injected_outages

let print_report ~verbose (r : run_report) =
  match r.rr_problems with
  | [] ->
      if verbose then
        Printf.printf "ok   seed=%d profile=%-7s bench=%-6s config=%s (%d ops)\n%!"
          r.rr_seed r.rr_profile r.rr_bench r.rr_config r.rr_total_ops
  | problems ->
      Printf.printf "FAIL seed=%d profile=%s bench=%s config=%s\n" r.rr_seed
        r.rr_profile r.rr_bench r.rr_config;
      List.iter (fun p -> Printf.printf "  %s\n%!" p) problems

let json_of_report (r : run_report) =
  Jsonl.Obj
    [
      ("seed", Jsonl.Int r.rr_seed);
      ("profile", Jsonl.String r.rr_profile);
      ("bench", Jsonl.String r.rr_bench);
      ("config", Jsonl.String r.rr_config);
      ("total_ops", Jsonl.Int r.rr_total_ops);
      ("problems", Jsonl.List (List.map (fun p -> Jsonl.String p) r.rr_problems));
      ("retransmits", Jsonl.Int r.rr_retransmits);
      ("dup_dropped", Jsonl.Int r.rr_dup_dropped);
      ("txn_timeouts", Jsonl.Int r.rr_txn_timeouts);
      ("fallbacks", Jsonl.Int r.rr_fallbacks);
      ("injected_drops", Jsonl.Int r.rr_injected_drops);
      ("injected_dups", Jsonl.Int r.rr_injected_dups);
      ("injected_delays", Jsonl.Int r.rr_injected_delays);
      ("injected_outages", Jsonl.Int r.rr_injected_outages);
    ]

let write_json path t reports =
  let doc =
    Jsonl.Obj
      [
        ("runs", Jsonl.List (List.map json_of_report reports));
        ( "tally",
          Jsonl.Obj
            [
              ("runs", Jsonl.Int t.runs);
              ("failures", Jsonl.Int t.failures);
              ("injected_drops", Jsonl.Int t.injected_drops);
              ("injected_dups", Jsonl.Int t.injected_dups);
              ("injected_delays", Jsonl.Int t.injected_delays);
              ("injected_outages", Jsonl.Int t.injected_outages);
              ("retransmits", Jsonl.Int t.retransmits);
              ("dup_dropped", Jsonl.Int t.dup_dropped);
              ("txn_timeouts", Jsonl.Int t.txn_timeouts);
              ("fallbacks", Jsonl.Int t.fallbacks);
            ] );
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Jsonl.to_string doc);
      output_char oc '\n')

let main seeds nodes scale profile_filter txn_timeout fallback_threshold max_events
    jobs json_path verbose =
  if nodes < 2 then begin
    Printf.eprintf "pcc_chaos: --nodes must be at least 2 (got %d)\n" nodes;
    2
  end
  else begin
    let profiles =
      match profile_filter with
      | Some name -> [ name ]
      | None -> List.map fst Fault.presets
    in
    (* Same nesting as the sequential loops ever had: seed, profile,
       bench — the submission order is the print order. *)
    let cells =
      List.concat_map
        (fun seed ->
          let benches =
            [ "random"; bench_rotation.((seed - 1) mod Array.length bench_rotation) ]
          in
          List.concat_map
            (fun profile_name ->
              List.map (fun bench -> (seed, profile_name, bench)) benches)
            profiles)
        (List.init seeds (fun i -> i + 1))
    in
    let tasks =
      List.map
        (fun (seed, profile_name, bench) ->
          ( Printf.sprintf "seed=%d/%s/%s" seed profile_name bench,
            fun () ->
              run_one ~bench ~config_name:"full" ~nodes ~scale ~seed ~profile_name
                ~txn_timeout ~fallback_threshold ~max_events ))
        cells
    in
    let reports = Pool.run_keyed ~jobs tasks in
    let t = tally () in
    List.iter
      (fun report ->
        absorb t report;
        print_report ~verbose report)
      reports;
    Printf.printf
      "%d chaotic runs, %d failures\n\
       injected: %d drops, %d duplicates, %d delays, %d outages\n\
       recovered: %d retransmits, %d duplicates dropped, %d txn timeouts, %d fallbacks\n"
      t.runs t.failures t.injected_drops t.injected_dups t.injected_delays
      t.injected_outages t.retransmits t.dup_dropped t.txn_timeouts t.fallbacks;
    (match json_path with Some path -> write_json path t reports | None -> ());
    if t.failures > 0 then 1
    else if t.retransmits = 0 || t.dup_dropped = 0 then begin
      (* a sweep that never had to recover proves nothing *)
      Printf.printf "SWEEP TOO QUIET: recovery machinery never exercised\n";
      1
    end
    else 0
  end

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME"
        ~doc:"Run a single fault profile (drops, storm, outages) instead of all.")

let txn_timeout_arg =
  Arg.(
    value & opt int 2000
    & info [ "txn-timeout" ] ~docv:"CYCLES"
        ~doc:"Initial per-transaction completion timeout.")

let fallback_arg =
  Arg.(
    value & opt int 2
    & info [ "fallback-threshold" ] ~docv:"N"
        ~doc:"Timeout strikes before a line falls back to the base protocol.")

let cmd =
  let term =
    Term.(
      const main
      $ Cli_common.seeds ~default:34
          ~doc:"Seeds per fault profile (each seed runs 2 benchmarks)." ()
      $ Cli_common.nodes ~default:6 ()
      $ Cli_common.scale ~default:0.15 ~doc:"Run-length scale for app benchmarks." ()
      $ profile_arg $ txn_timeout_arg $ fallback_arg
      $ Cli_common.max_events ()
      $ Cli_common.jobs ~what:"chaotic runs" ()
      $ Cli_common.json
          ~doc:"Write machine-readable per-run reports and the final tally to $(docv)."
          ()
      $ Cli_common.verbose ~doc:"Print each passing run." ())
  in
  Cmd.v
    (Cmd.info "pcc_chaos"
       ~doc:
         "Seeded chaos sweeps: coherence under an unreliable interconnect with the \
          online oracle attached")
    term

let () = exit (Cmd.eval' cmd)
