(* Seeded chaos sweeps: run workloads over a deliberately unreliable
   interconnect — packets dropped, duplicated, delayed, reordered, links
   taken down transiently — with the online coherence oracle attached.
   A sweep passes only if every run quiesces with every operation
   committed and zero oracle violations, and the recovery machinery was
   actually exercised (nonzero retransmit / duplicate-drop counters).

   Seeds are independent simulations, so the sweep fans out across
   domains (--jobs N / PCC_JOBS; 1 = sequential).  Workers never print:
   each run returns a report and the main domain prints them in
   submission order, so output and the --json artifact are bit-identical
   at every jobs level.

   Crash-sweep mode layers scheduled fail-stop node crashes (--crash,
   --restart-after, --crash-nodes) on top of the packet chaos: each run
   additionally kills nodes mid-flight and must recover through the
   epoch/revocation machinery, restart them cold, and still commit every
   operation.

     dune exec bin/pcc_chaos.exe -- --seeds 34
     dune exec bin/pcc_chaos.exe -- --profile storm --seeds 5 --verbose
     dune exec bin/pcc_chaos.exe -- --crash 1 --seeds 12
     dune exec bin/pcc_chaos.exe -- --crash-nodes 1,3 --restart-after 8000 *)

open Cmdliner
open Pcc

let bench_rotation = [| "barnes"; "ocean"; "em3d"; "lu"; "cg"; "mg"; "appbt" |]

let count_accesses programs =
  Array.fold_left
    (fun acc ops ->
      List.fold_left
        (fun acc op ->
          match op with Types.Access _ -> acc + 1 | Types.Compute _ | Types.Barrier _ -> acc)
        acc ops)
    0 programs

type tally = {
  mutable runs : int;
  mutable failures : int;
  mutable retransmits : int;
  mutable dup_dropped : int;
  mutable txn_timeouts : int;
  mutable fallbacks : int;
  mutable injected_drops : int;
  mutable injected_dups : int;
  mutable injected_delays : int;
  mutable injected_outages : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable crash_revoked : int;
}

let tally () =
  {
    runs = 0;
    failures = 0;
    retransmits = 0;
    dup_dropped = 0;
    txn_timeouts = 0;
    fallbacks = 0;
    injected_drops = 0;
    injected_dups = 0;
    injected_delays = 0;
    injected_outages = 0;
    crashes = 0;
    restarts = 0;
    crash_revoked = 0;
  }

(* Failure reasons for one chaotic run; empty list = the run survived. *)
let check_run ~total_ops ~committed (result : System.result) =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match result.stall with
  | None -> ()
  | Some stall ->
      add "did not quiesce: %s"
        (Format.asprintf "%a" System.pp_stall_report stall));
  if committed <> total_ops then
    add "committed %d of %d operations" committed total_ops;
  if result.violations > 0 then add "%d memory-check violations" result.violations;
  (match result.invariant_errors with
  | [] -> ()
  | errs -> add "%d invariant errors (first: %s)" (List.length errs) (List.hd errs));
  List.rev !problems

(* Everything one chaotic run reports back to the main domain. *)
type run_report = {
  rr_seed : int;
  rr_profile : string;
  rr_bench : string;
  rr_workload : string;
      (* resolved workload description (registry describe string) for the
         --json artifact *)
  rr_config : string;
  rr_total_ops : int;
  rr_problems : string list;
  rr_retransmits : int;
  rr_dup_dropped : int;
  rr_txn_timeouts : int;
  rr_fallbacks : int;
  rr_injected_drops : int;
  rr_injected_dups : int;
  rr_injected_delays : int;
  rr_injected_outages : int;
  rr_crashes : int;
  rr_restarts : int;
  rr_crash_revoked : int;
  rr_flight_dump : string option;
      (* armed post-mortem path for this run — the artifact to open when
         the run fails *)
}

(* Fail-stop schedule for one run, derived purely from the run's own
   identity so crash sweeps stay bit-identical across pool widths.
   [crash_nodes], when non-empty, pins the victims (the seeded schedule
   still picks the crash times); otherwise [crash_victims] seeded nodes
   die.  The window sits inside a default-scale run so crashes land
   mid-traffic, and every victim restarts — a sweep must quiesce. *)
let crash_schedule_for ~chaos_seed ~nodes ~crash_victims ~crash_nodes ~restart_after =
  if crash_victims = 0 && crash_nodes = [] then []
  else
    let victims =
      if crash_nodes = [] then crash_victims else List.length crash_nodes
    in
    let sched =
      Fault.crash_schedule ~seed:chaos_seed ~nodes ~victims ~window:(3_000, 12_000)
        ~restart_after ()
    in
    match crash_nodes with
    | [] -> sched
    | explicit -> List.map2 (fun (c : Fault.crash) victim -> { c with victim }) sched explicit

let run_one ~bench ~config_name ~protocol ~nodes ~scale ~seed ~profile_name
    ~txn_timeout ~fallback_threshold ~max_events ~crash_victims ~crash_nodes
    ~restart_after ~flight_dir =
  let desc =
    { Oracle.Trace.bench; config_name; nodes; scale; seed; fault = false }
  in
  (* independent chaos stream per (seed, profile, bench): the workload RNG
     stays pinned by [seed] alone, so the same traffic meets different
     fault schedules *)
  let chaos_seed = (seed * 8191) + Hashtbl.hash (profile_name, bench) in
  let profile =
    match Fault.preset profile_name ~seed:chaos_seed with
    | Some p -> p
    | None ->
        raise
          (Invalid_argument (Printf.sprintf "unknown fault profile %S" profile_name))
  in
  let profile =
    {
      profile with
      Fault.crashes =
        crash_schedule_for ~chaos_seed ~nodes ~crash_victims ~crash_nodes
          ~restart_after;
    }
  in
  let config =
    {
      (Oracle.Trace.config_of_desc desc) with
      Config.protocol;
      net_faults = Some profile;
      txn_timeout;
      fallback_threshold;
    }
  in
  (* resolve through the workload registry: [bench] is a full spec string
     (validated up front in [main], so failure here is a program error) *)
  let workload =
    match Workload.of_spec ~nodes ~scale ~seed bench with
    | Ok w -> w
    | Error message -> invalid_arg ("pcc_chaos: " ^ message)
  in
  let programs = Workload.programs workload in
  let total_ops = count_accesses programs in
  let sys = System.create ~config () in
  (* Deterministic per-run artifact path: a function of the run's own
     identity, so parallel workers never collide and reruns overwrite. *)
  (match flight_dir with
  | None -> ()
  | Some dir ->
      System.arm_flight_dump sys
        ~path:
          (Filename.concat dir
             (Printf.sprintf "seed%d-%s-%s.flight.json" seed profile_name bench)));
  (* the directory-state auditor reads adaptive internals; the snooping
     backends are covered by the memory checker and quiescence invariants *)
  if protocol = Types.Adaptive then ignore (Oracle.Audit.attach sys);
  let committed = ref 0 in
  System.on_commit sys (fun _ -> incr committed);
  let report =
    {
      rr_seed = seed;
      rr_profile = profile_name;
      rr_bench = bench;
      rr_workload = Workload.describe workload;
      rr_config = config_name;
      rr_total_ops = total_ops;
      rr_problems = [];
      rr_retransmits = 0;
      rr_dup_dropped = 0;
      rr_txn_timeouts = 0;
      rr_fallbacks = 0;
      rr_injected_drops = 0;
      rr_injected_dups = 0;
      rr_injected_delays = 0;
      rr_injected_outages = 0;
      rr_crashes = 0;
      rr_restarts = 0;
      rr_crash_revoked = 0;
      rr_flight_dump = System.flight_dump_path sys;
    }
  in
  match System.run_programs ~max_events sys programs with
  | exception Oracle.Audit.Violation { message; time; _ } ->
      {
        report with
        rr_problems = [ Printf.sprintf "oracle violation at t=%d: %s" time message ];
      }
  | result ->
      let stats = result.System.stats in
      let drops, dups, delays, outages =
        match System.fault_stats sys with
        | Some f -> (f.Fault.dropped, f.Fault.duplicated, f.Fault.delayed, f.Fault.outages_started)
        | None -> (0, 0, 0, 0)
      in
      let stats_errors =
        List.map (fun e -> "stats: " ^ e) (Oracle.Stats_check.check sys result)
      in
      {
        report with
        rr_problems = check_run ~total_ops ~committed:!committed result @ stats_errors;
        rr_retransmits = stats.Run_stats.retransmits;
        rr_dup_dropped = stats.Run_stats.dup_dropped;
        rr_txn_timeouts = stats.Run_stats.txn_timeouts;
        rr_fallbacks = stats.Run_stats.fallbacks;
        rr_injected_drops = drops;
        rr_injected_dups = dups;
        rr_injected_delays = delays;
        rr_injected_outages = outages;
        rr_crashes = stats.Run_stats.crashes;
        rr_restarts = stats.Run_stats.restarts;
        rr_crash_revoked = stats.Run_stats.crash_revoked;
      }

let absorb t (r : run_report) =
  t.runs <- t.runs + 1;
  if r.rr_problems <> [] then t.failures <- t.failures + 1;
  t.retransmits <- t.retransmits + r.rr_retransmits;
  t.dup_dropped <- t.dup_dropped + r.rr_dup_dropped;
  t.txn_timeouts <- t.txn_timeouts + r.rr_txn_timeouts;
  t.fallbacks <- t.fallbacks + r.rr_fallbacks;
  t.injected_drops <- t.injected_drops + r.rr_injected_drops;
  t.injected_dups <- t.injected_dups + r.rr_injected_dups;
  t.injected_delays <- t.injected_delays + r.rr_injected_delays;
  t.injected_outages <- t.injected_outages + r.rr_injected_outages;
  t.crashes <- t.crashes + r.rr_crashes;
  t.restarts <- t.restarts + r.rr_restarts;
  t.crash_revoked <- t.crash_revoked + r.rr_crash_revoked

let print_report ~verbose (r : run_report) =
  match r.rr_problems with
  | [] ->
      if verbose then
        Printf.printf "ok   seed=%d profile=%-7s bench=%-6s config=%s (%d ops)\n%!"
          r.rr_seed r.rr_profile r.rr_bench r.rr_config r.rr_total_ops
  | problems ->
      Printf.printf "FAIL seed=%d profile=%s bench=%s config=%s\n" r.rr_seed
        r.rr_profile r.rr_bench r.rr_config;
      List.iter (fun p -> Printf.printf "  %s\n%!" p) problems;
      (match r.rr_flight_dump with
      | Some path ->
          Printf.printf "  post-mortem: %s (decode with pcc_trace --flight %s)\n%!"
            path path
      | None -> ())

let json_of_report (r : run_report) =
  Jsonl.Obj
    [
      ("seed", Jsonl.Int r.rr_seed);
      ("profile", Jsonl.String r.rr_profile);
      ("bench", Jsonl.String r.rr_bench);
      ("workload", Jsonl.String r.rr_workload);
      ("config", Jsonl.String r.rr_config);
      ("total_ops", Jsonl.Int r.rr_total_ops);
      ("problems", Jsonl.List (List.map (fun p -> Jsonl.String p) r.rr_problems));
      ("retransmits", Jsonl.Int r.rr_retransmits);
      ("dup_dropped", Jsonl.Int r.rr_dup_dropped);
      ("txn_timeouts", Jsonl.Int r.rr_txn_timeouts);
      ("fallbacks", Jsonl.Int r.rr_fallbacks);
      ("injected_drops", Jsonl.Int r.rr_injected_drops);
      ("injected_dups", Jsonl.Int r.rr_injected_dups);
      ("injected_delays", Jsonl.Int r.rr_injected_delays);
      ("injected_outages", Jsonl.Int r.rr_injected_outages);
      ("crashes", Jsonl.Int r.rr_crashes);
      ("restarts", Jsonl.Int r.rr_restarts);
      ("crash_revoked", Jsonl.Int r.rr_crash_revoked);
      ( "flight_dump",
        match r.rr_flight_dump with Some p -> Jsonl.String p | None -> Jsonl.Null );
    ]

let write_json path t reports =
  let doc =
    Jsonl.Obj
      [
        ("runs", Jsonl.List (List.map json_of_report reports));
        ( "tally",
          Jsonl.Obj
            [
              ("runs", Jsonl.Int t.runs);
              ("failures", Jsonl.Int t.failures);
              ("injected_drops", Jsonl.Int t.injected_drops);
              ("injected_dups", Jsonl.Int t.injected_dups);
              ("injected_delays", Jsonl.Int t.injected_delays);
              ("injected_outages", Jsonl.Int t.injected_outages);
              ("retransmits", Jsonl.Int t.retransmits);
              ("dup_dropped", Jsonl.Int t.dup_dropped);
              ("txn_timeouts", Jsonl.Int t.txn_timeouts);
              ("fallbacks", Jsonl.Int t.fallbacks);
              ("crashes", Jsonl.Int t.crashes);
              ("restarts", Jsonl.Int t.restarts);
              ("crash_revoked", Jsonl.Int t.crash_revoked);
            ] );
      ]
  in
  Atomic_file.write ~path (fun oc ->
      output_string oc (Jsonl.to_string doc);
      output_char oc '\n')

let main workload_pin seeds protocol nodes scale profile_filter txn_timeout
    fallback_threshold max_events jobs json_path verbose crash_victims crash_nodes
    restart_after flight_dir metrics_path =
  let pin_error =
    (* validate the pinned spec loudly up front — workers must never be the
       first place an unknown workload name is noticed *)
    match workload_pin with
    | None -> None
    | Some spec -> (
        match Workload.of_spec ~nodes ~scale ~seed:1 spec with
        | Ok _ -> None
        | Error message -> Some message)
  in
  match pin_error with
  | Some message ->
      Printf.eprintf "pcc_chaos: %s\n" message;
      2
  | None ->
  if protocol <> Types.Adaptive && (crash_victims > 0 || crash_nodes <> []) then begin
    Printf.eprintf
      "pcc_chaos: fail-stop crashes need the adaptive backend (--protocol %s given)\n"
      (Protocol.to_string protocol);
    2
  end
  else if nodes < 2 then begin
    Printf.eprintf "pcc_chaos: --nodes must be at least 2 (got %d)\n" nodes;
    2
  end
  else if crash_victims < 0 || crash_victims > nodes - 1 then begin
    Printf.eprintf "pcc_chaos: --crash must be in [0, nodes-1] (got %d)\n"
      crash_victims;
    2
  end
  else if restart_after <= 0 then begin
    (* a sweep's pass criterion is full quiescence with every operation
       committed; a victim that never returns cannot satisfy it, so
       permanent death stays in the test suite, not the sweep *)
    Printf.eprintf "pcc_chaos: --restart-after must be positive (got %d)\n"
      restart_after;
    2
  end
  else if
    List.exists (fun v -> v < 0 || v >= nodes) crash_nodes
    || List.length (List.sort_uniq compare crash_nodes) <> List.length crash_nodes
    || List.length crash_nodes > nodes - 1
  then begin
    Printf.eprintf
      "pcc_chaos: --crash-nodes must list distinct nodes in [0, %d], leaving at \
       least one survivor\n"
      (nodes - 1);
    2
  end
  else begin
    let flight_dir =
      match flight_dir with
      | "none" -> None
      | dir ->
          (match Sys.mkdir dir 0o755 with
          | () -> ()
          | exception Sys_error _ -> ());
          Some dir
    in
    let profiles =
      match profile_filter with
      | Some name -> [ name ]
      | None -> List.map fst Fault.presets
    in
    (* Same nesting as the sequential loops ever had: seed, profile,
       bench — the submission order is the print order. *)
    let cells =
      List.concat_map
        (fun seed ->
          let benches =
            match workload_pin with
            | Some spec -> [ spec ]
            | None ->
                [ "random"; bench_rotation.((seed - 1) mod Array.length bench_rotation) ]
          in
          List.concat_map
            (fun profile_name ->
              List.map (fun bench -> (seed, profile_name, bench)) benches)
            profiles)
        (List.init seeds (fun i -> i + 1))
    in
    let tasks =
      List.map
        (fun (seed, profile_name, bench) ->
          ( Printf.sprintf "seed=%d/%s/%s" seed profile_name bench,
            fun () ->
              run_one ~bench ~config_name:"full" ~protocol ~nodes ~scale ~seed
                ~profile_name ~txn_timeout ~fallback_threshold ~max_events
                ~crash_victims ~crash_nodes ~restart_after ~flight_dir ))
        cells
    in
    let reports = Pool.run_keyed ~jobs tasks in
    let t = tally () in
    List.iter
      (fun report ->
        absorb t report;
        print_report ~verbose report)
      reports;
    let crash_mode = crash_victims > 0 || crash_nodes <> [] in
    Printf.printf
      "%d chaotic runs, %d failures\n\
       injected: %d drops, %d duplicates, %d delays, %d outages\n\
       recovered: %d retransmits, %d duplicates dropped, %d txn timeouts, %d fallbacks\n"
      t.runs t.failures t.injected_drops t.injected_dups t.injected_delays
      t.injected_outages t.retransmits t.dup_dropped t.txn_timeouts t.fallbacks;
    if crash_mode then
      Printf.printf "crashed: %d fail-stops, %d restarts, %d delegations revoked\n"
        t.crashes t.restarts t.crash_revoked;
    (match json_path with Some path -> write_json path t reports | None -> ());
    Cli_common.write_metrics metrics_path (fun registry ->
        let module R = Telemetry.Registry in
        R.counter registry "pcc_chaos_runs" t.runs;
        R.counter registry "pcc_chaos_failures" t.failures;
        R.counter registry "pcc_chaos_injected_drops" t.injected_drops;
        R.counter registry "pcc_chaos_injected_dups" t.injected_dups;
        R.counter registry "pcc_chaos_injected_delays" t.injected_delays;
        R.counter registry "pcc_chaos_injected_outages" t.injected_outages;
        R.counter registry "pcc_retransmits" t.retransmits;
        R.counter registry "pcc_dup_dropped" t.dup_dropped;
        R.counter registry "pcc_txn_timeouts" t.txn_timeouts;
        R.counter registry "pcc_fallbacks" t.fallbacks;
        R.counter registry "pcc_crashes" t.crashes;
        R.counter registry "pcc_restarts" t.restarts;
        R.counter registry "pcc_crash_revoked" t.crash_revoked);
    if t.failures > 0 then 1
    else if t.retransmits = 0 || t.dup_dropped = 0 then begin
      (* a sweep that never had to recover proves nothing *)
      Printf.printf "SWEEP TOO QUIET: recovery machinery never exercised\n";
      1
    end
    else if crash_mode && t.crashes = 0 then begin
      Printf.printf "SWEEP TOO QUIET: crash mode on but no node ever fail-stopped\n";
      1
    end
    else 0
  end

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME"
        ~doc:"Run a single fault profile (drops, storm, outages) instead of all.")

let txn_timeout_arg =
  Arg.(
    value & opt int 2000
    & info [ "txn-timeout" ] ~docv:"CYCLES"
        ~doc:"Initial per-transaction completion timeout.")

let fallback_arg =
  Arg.(
    value & opt int 2
    & info [ "fallback-threshold" ] ~docv:"N"
        ~doc:"Timeout strikes before a line falls back to the base protocol.")

let crash_arg =
  Arg.(
    value & opt int 0
    & info [ "crash" ] ~docv:"N"
        ~doc:
          "Fail-stop $(docv) seeded victim nodes per run (0 disables; at least \
           one node always survives).  Victims lose all volatile state, are \
           detected and recovered from by the directory, and restart cold.")

let crash_nodes_arg =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.filter (fun x -> String.trim x <> "")
        |> List.map (fun x -> int_of_string (String.trim x)))
    with Failure _ -> Error (`Msg (Printf.sprintf "%S: expected node ids like 1,3" s))
  in
  let print ppf vs =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int vs))
  in
  Arg.(
    value
    & opt (conv (parse, print)) []
    & info [ "crash-nodes" ] ~docv:"IDS"
        ~doc:
          "Comma-separated victim nodes (e.g. 1,3) to crash instead of seeded \
           picks; crash times stay seeded.  Overrides $(b,--crash).")

let restart_after_arg =
  Arg.(
    value & opt int 5_000
    & info [ "restart-after" ] ~docv:"CYCLES"
        ~doc:
          "Cycles between a victim's fail-stop and its cold restart.  Must be \
           positive: a sweep's pass criterion needs every victim back to \
           commit its remaining operations.")

let flight_dir_arg =
  Arg.(
    value & opt string "flight-dumps"
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for flight-recorder post-mortems (created if missing; \
           $(b,none) disables arming).  Every run arms a deterministic \
           per-run dump path there; on a stall, crash or oracle violation \
           the retained event window lands at that path and the failure \
           report names it (decode with $(b,pcc_trace --flight)).")

let workload_pin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"SPEC"
        ~doc:
          "Pin every chaotic run to one workload spec \
           ($(i,NAME) or $(i,NAME:key=value,...)) instead of the \
           random + rotating-benchmark pair per seed.")

let cmd =
  let term =
    Term.(
      const main $ workload_pin_arg
      $ Cli_common.seeds ~default:34
          ~doc:"Seeds per fault profile (each seed runs 2 benchmarks)." ()
      $ Cli_common.protocol ()
      $ Cli_common.nodes ~default:6 ()
      $ Cli_common.scale ~default:0.15 ~doc:"Run-length scale for app benchmarks." ()
      $ profile_arg $ txn_timeout_arg $ fallback_arg
      $ Cli_common.max_events ()
      $ Cli_common.jobs ~what:"chaotic runs" ()
      $ Cli_common.json
          ~doc:"Write machine-readable per-run reports and the final tally to $(docv)."
          ()
      $ Cli_common.verbose ~doc:"Print each passing run." ()
      $ crash_arg $ crash_nodes_arg $ restart_after_arg $ flight_dir_arg
      $ Cli_common.metrics ())
  in
  Cmd.v
    (Cmd.info "pcc_chaos"
       ~doc:
         "Seeded chaos sweeps: coherence under an unreliable interconnect — and \
          under scheduled fail-stop node crashes — with the online oracle attached")
    term

let () = exit (Cmd.eval' cmd)
