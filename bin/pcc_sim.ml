(* Command-line simulator driver: run one workload under one machine
   configuration and print the run statistics.

     dune exec bin/pcc_sim.exe -- --workload em3d --machine full --scale 0.5
     dune exec bin/pcc_sim.exe -- --workload kv:skew=1.2,events=1000000
     dune exec bin/pcc_sim.exe -- --workload trace:file=run.pcct  # replay *)

open Pcc
open Cmdliner

let machine_of_string nodes = function
  | "base" -> Ok (Config.base ~nodes ())
  | "rac" -> Ok (Config.rac_only ~nodes ())
  | "delegation" -> Ok (Config.delegation_only ~nodes ())
  | "small" | "full" -> Ok (Config.small_full ~nodes ())
  | "large" -> Ok (Config.large_full ~nodes ())
  | other -> Error (Printf.sprintf "unknown machine %S" other)

let run workload_spec machine protocol nodes scale seed delegate_entries rac_kb
    intervention_delay hop_latency max_events verbose metrics_path flight_dump
    record_path json_path =
  let workload =
    Cli_common.resolve_workload ~tool:"pcc_sim" ~nodes ~scale ~seed workload_spec
  in
  (* a trace replay carries its own node count; generators were built at
     the requested one *)
  let nodes = Workload.nodes workload in
  match machine_of_string nodes machine with
  | Error message ->
      prerr_endline message;
      1
  | Ok config ->
      let config = { config with Config.protocol } in
      let config =
        {
          config with
          Config.delegate_entries =
            Option.value delegate_entries ~default:config.Config.delegate_entries;
          rac_bytes =
            (match rac_kb with
            | Some kb -> kb * 1024
            | None -> config.Config.rac_bytes);
          intervention_delay =
            Option.value intervention_delay ~default:config.Config.intervention_delay;
        }
      in
      let config =
        match hop_latency with
        | Some hop -> Config.with_hop_latency config hop
        | None -> config
      in
      Format.printf "workload=%s machine=%s nodes=%d%s@."
        (Workload.describe workload)
        (Config.describe config) nodes
        (match Workload.total_accesses workload with
        | Some ops -> Printf.sprintf " ops=%d" ops
        | None -> "");
      let sys = System.create ~config () in
      (match flight_dump with
      | Some path -> System.arm_flight_dump sys ~path
      | None -> ());
      let stream = Workload.stream workload in
      let writer =
        Option.map (fun path -> Btrace.Writer.create ~path ~nodes ()) record_path
      in
      let stream =
        match writer with Some w -> Btrace.recording w stream | None -> stream
      in
      let result =
        match System.run_stream ?max_events sys stream with
        | result ->
            Option.iter Btrace.Writer.close writer;
            result
        | exception e ->
            Option.iter Btrace.Writer.abort writer;
            raise e
      in
      (match (writer, record_path) with
      | Some _, Some path -> Format.printf "recorded binary trace: %s@." path
      | _ -> ());
      Cli_common.write_metrics metrics_path (fun registry ->
          Telemetry.Registry.add_result registry result;
          Telemetry.Registry.add_system registry sys);
      (match json_path with
      | Some path ->
          Atomic_file.write_string ~path
            (Run_export.to_string
               ~workload:(Workload.describe workload)
               ~key:(Config.describe config) result
            ^ "\n")
      | None -> ());
      Format.printf "cycles            %d@." result.System.cycles;
      Format.printf "network messages  %d (%d KB)@." result.System.network_messages
        (result.System.network_bytes / 1024);
      Format.printf "remote misses     %d@." (Run_stats.remote_misses result.System.stats);
      Format.printf "%a@." Run_stats.pp result.System.stats;
      Format.printf "updates consumed  %d, wasted %d@." result.System.updates_consumed
        result.System.updates_wasted;
      Format.printf "violations        %d@." result.System.violations;
      List.iter (Format.printf "INVARIANT ERROR: %s@.") result.System.invariant_errors;
      (match result.System.stall with
      | Some stall -> Format.printf "%a@." System.pp_stall_report stall
      | None -> ());
      if verbose then begin
        Format.printf "@.per-class network messages:@.";
        Format.printf "%a@." Counter.pp result.System.stats.Run_stats.message_classes
      end;
      if result.System.violations = 0 && result.System.invariant_errors = [] then 0
      else 2

let delegate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "delegate-entries" ] ~docv:"E" ~doc:"Override delegate-table entries.")

let rac_arg =
  Arg.(value & opt (some int) None & info [ "rac-kb" ] ~docv:"KB" ~doc:"Override RAC size.")

let delay_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "intervention-delay" ] ~docv:"CYCLES" ~doc:"Override intervention delay.")

let hop_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hop-latency" ] ~docv:"CYCLES" ~doc:"Override network hop latency.")

let max_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:"Event budget for the run (default: unbounded).")

let flight_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"PATH"
        ~doc:
          "Arm the always-on flight recorder's post-mortem: on a stall, crash \
           or uncaught exception the retained event window is dumped to \
           $(docv) (decode with $(b,pcc_trace --flight)).")

let record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"PATH"
        ~doc:
          "Record the executed op stream to $(docv) as a compact binary trace \
           (atomic temp+rename); re-feed it with \
           $(b,--workload trace:file=)$(docv).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the canonical machine-readable result row (Run_export) to \
           $(docv).")

let cmd =
  let term =
    Term.(
      const run $ Cli_common.workload () $ Cli_common.config () $ Cli_common.protocol ()
      $ Cli_common.nodes ()
      $ Cli_common.scale () $ Cli_common.seed () $ delegate_arg $ rac_arg $ delay_arg
      $ hop_arg $ max_events_arg
      $ Cli_common.verbose ~doc:"Print per-class message counters." ()
      $ Cli_common.metrics () $ flight_dump_arg $ record_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "pcc_sim" ~doc:"Simulate a workload on a selectable coherence backend")
    term

let () = exit (Cmd.eval' cmd)
