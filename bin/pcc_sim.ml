(* Command-line simulator driver: run one workload under one machine
   configuration and print the run statistics.

     dune exec bin/pcc_sim.exe -- --app em3d --machine full --scale 0.5 *)

open Pcc
open Cmdliner

let machine_of_string nodes = function
  | "base" -> Ok (Config.base ~nodes ())
  | "rac" -> Ok (Config.rac_only ~nodes ())
  | "delegation" -> Ok (Config.delegation_only ~nodes ())
  | "small" | "full" -> Ok (Config.small_full ~nodes ())
  | "large" -> Ok (Config.large_full ~nodes ())
  | other -> Error (Printf.sprintf "unknown machine %S" other)

let run app_name machine protocol nodes scale seed delegate_entries rac_kb
    intervention_delay hop_latency verbose metrics_path flight_dump =
  match Workloads.find app_name with
  | None ->
      Printf.eprintf "unknown app %S (try: %s)\n" app_name
        (String.concat ", " (List.map (fun a -> a.Workloads.name) Workloads.all));
      1
  | Some app -> (
      match machine_of_string nodes machine with
      | Error message ->
          prerr_endline message;
          1
      | Ok config ->
          let config = { config with Config.protocol } in
          let config =
            {
              config with
              Config.delegate_entries =
                Option.value delegate_entries ~default:config.Config.delegate_entries;
              rac_bytes =
                (match rac_kb with
                | Some kb -> kb * 1024
                | None -> config.Config.rac_bytes);
              intervention_delay =
                Option.value intervention_delay ~default:config.Config.intervention_delay;
            }
          in
          let config =
            match hop_latency with
            | Some hop -> Config.with_hop_latency config hop
            | None -> config
          in
          let programs = Workloads.programs app ~scale ~seed ~nodes () in
          Format.printf "app=%s machine=%s nodes=%d scale=%.2f ops=%d@." app.name
            (Config.describe config) nodes scale
            (Workload_gen.total_ops programs);
          let sys = System.create ~config () in
          (match flight_dump with
          | Some path -> System.arm_flight_dump sys ~path
          | None -> ());
          let result = System.run_programs sys programs in
          Cli_common.write_metrics metrics_path (fun registry ->
              Telemetry.Registry.add_result registry result;
              Telemetry.Registry.add_system registry sys);
          Format.printf "cycles            %d@." result.System.cycles;
          Format.printf "network messages  %d (%d KB)@." result.System.network_messages
            (result.System.network_bytes / 1024);
          Format.printf "remote misses     %d@." (Run_stats.remote_misses result.System.stats);
          Format.printf "%a@." Run_stats.pp result.System.stats;
          Format.printf "updates consumed  %d, wasted %d@." result.System.updates_consumed
            result.System.updates_wasted;
          Format.printf "violations        %d@." result.System.violations;
          List.iter (Format.printf "INVARIANT ERROR: %s@.") result.System.invariant_errors;
          if verbose then begin
            Format.printf "@.per-class network messages:@.";
            Format.printf "%a@." Counter.pp result.System.stats.Run_stats.message_classes
          end;
          if result.System.violations = 0 && result.System.invariant_errors = [] then 0
          else 2)

let delegate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "delegate-entries" ] ~docv:"E" ~doc:"Override delegate-table entries.")

let rac_arg =
  Arg.(value & opt (some int) None & info [ "rac-kb" ] ~docv:"KB" ~doc:"Override RAC size.")

let delay_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "intervention-delay" ] ~docv:"CYCLES" ~doc:"Override intervention delay.")

let hop_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hop-latency" ] ~docv:"CYCLES" ~doc:"Override network hop latency.")

let flight_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dump" ] ~docv:"PATH"
        ~doc:
          "Arm the always-on flight recorder's post-mortem: on a stall, crash \
           or uncaught exception the retained event window is dumped to \
           $(docv) (decode with $(b,pcc_trace --flight)).")

let cmd =
  let term =
    Term.(
      const run $ Cli_common.app () $ Cli_common.config () $ Cli_common.protocol ()
      $ Cli_common.nodes ()
      $ Cli_common.scale () $ Cli_common.seed () $ delegate_arg $ rac_arg $ delay_arg
      $ hop_arg
      $ Cli_common.verbose ~doc:"Print per-class message counters." ()
      $ Cli_common.metrics () $ flight_dump_arg)
  in
  Cmd.v
    (Cmd.info "pcc_sim" ~doc:"Simulate a workload on a selectable coherence backend")
    term

let () = exit (Cmd.eval' cmd)
