(* Transaction-level telemetry: run one workload with the telemetry
   recorder attached and emit a Perfetto trace (trace.json), time-series
   metrics (metrics.jsonl), and a text latency/phase report.  Doubles as
   a self-profiler of the simulator (events/sec, peak queue depth).

     dune exec bin/pcc_trace.exe -- --out-dir /tmp/pcc
     dune exec bin/pcc_trace.exe -- --bench em3d --config full --sample-every 200

   Load trace.json at https://ui.perfetto.dev or chrome://tracing. *)

open Cmdliner
open Pcc
module Sim = Pcc.Simulator
module Gen = Pcc.Workload_gen

(* A distilled producer-consumer microbenchmark (the paper's target
   pattern): node 0 writes a handful of lines each epoch, every other
   node reads them, barrier, repeat.  Kept here rather than in Apps —
   it is a telemetry demo, not an evaluation benchmark. *)
let prodcons_spec ~nodes ~scale ~seed =
  {
    Gen.name = "prodcons";
    nodes;
    phases = 2;
    epochs_per_phase = max 2 (int_of_float (20.0 *. scale /. 0.15));
    lines =
      List.init 4 (fun i ->
          {
            Gen.line = Gen.shared_line ~home:0 i;
            producer_of_phase = (fun _ -> 0);
            consumers_of_phase = (fun _ -> List.init (nodes - 1) (fun c -> c + 1));
            writes_per_epoch = 4;
            reads_per_epoch = 2;
          });
    private_lines_per_node = 4;
    private_accesses_per_epoch = 6;
    private_write_fraction = 0.4;
    compute_per_epoch = 60;
    seed;
  }

let programs_of ~bench ~nodes ~scale ~seed ~config_name =
  if bench = "prodcons" then Gen.programs (prodcons_spec ~nodes ~scale ~seed)
  else
    Oracle.Trace.programs_of_desc
      { Oracle.Trace.bench; config_name; nodes; scale; seed; fault = false }

(* Post-mortem decode mode: turn a flight-recorder dump into a readable
   timeline on stdout and a Perfetto fragment next to the dump file. *)
let decode_flight path =
  match Telemetry.Flight.load path with
  | Error message ->
      Printf.eprintf "pcc_trace --flight: %s\n" message;
      2
  | Ok dump ->
      Format.printf "@[<v>%a@]@?" Telemetry.Flight.pp_timeline dump;
      let perfetto_path = path ^ ".perfetto.json" in
      Telemetry.Flight.write_perfetto ~path:perfetto_path dump;
      Format.printf "wrote %s (load at https://ui.perfetto.dev)@." perfetto_path;
      0

let run_traced ~bench ~config_name ~nodes ~scale ~seed ~sample_every ~out_dir
    ~max_events ~metrics_path =
  let config =
    Oracle.Trace.config_of_desc
      { Oracle.Trace.bench; config_name; nodes; scale; seed; fault = false }
  in
  let programs = programs_of ~bench ~nodes ~scale ~seed ~config_name in
  let sys = System.create ~config () in
  let recorder = Telemetry.Recorder.attach ~sample_every sys in
  let wall_start = Unix.gettimeofday () in
  let result = System.run_programs ~max_events sys programs in
  let wall = Unix.gettimeofday () -. wall_start in
  let sim = System.sim sys in
  (match Unix.mkdir out_dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let spans = Telemetry.Recorder.spans recorder in
  let samples = Telemetry.Recorder.samples recorder in
  let recoveries = Telemetry.Recorder.recoveries recorder in
  Cli_common.write_metrics metrics_path (fun registry ->
      Telemetry.Registry.add_result registry result;
      Telemetry.Registry.add_system registry sys);
  let trace_path = Filename.concat out_dir "trace.json" in
  let metrics_path = Filename.concat out_dir "metrics.jsonl" in
  Telemetry.Perfetto.write ~recoveries ~path:trace_path spans;
  Telemetry.Metrics.write ~path:metrics_path
    ~links:(Telemetry.Recorder.retransmits_by_link recorder)
    samples;
  Telemetry.Report.print Format.std_formatter ~result ~spans ~samples ~recoveries
    ~self:
      {
        Telemetry.Report.wall_seconds = wall;
        events_executed = Sim.events_executed sim;
        peak_queue_depth = Sim.peak_pending sim;
      }
    ();
  Format.printf "wrote %s (%d spans), %s (%d samples)@." trace_path
    (List.length spans) metrics_path (List.length samples);
  let leftovers = Telemetry.Recorder.open_span_count recorder in
  if leftovers > 0 then begin
    Format.printf "WARNING: %d spans never closed (run did not quiesce?)@." leftovers;
    1
  end
  else if result.System.outcome <> Sim.Drained then 1
  else 0

let main bench config_name nodes scale seed sample_every out_dir max_events flight
    metrics_path =
  match flight with
  | Some path -> decode_flight path
  | None ->
      run_traced ~bench ~config_name ~nodes ~scale ~seed ~sample_every ~out_dir
        ~max_events ~metrics_path

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Decode a flight-recorder post-mortem dump instead of running a \
           workload: print the retained event window as a timeline and write \
           $(docv).perfetto.json next to it.")

let bench_arg =
  Arg.(
    value & opt string "prodcons"
    & info [ "b"; "bench" ] ~docv:"NAME"
        ~doc:
          "Workload: prodcons (built-in producer-consumer microbenchmark), random, \
           or an app benchmark (barnes, ocean, em3d, lu, cg, mg, appbt).")

let sample_arg =
  Arg.(
    value & opt int 500
    & info [ "sample-every" ] ~docv:"CYCLES"
        ~doc:"Time-series sampling cadence in simulated cycles (0 disables).")

let out_dir_arg =
  Arg.(
    value & opt string "telemetry-out"
    & info [ "o"; "out-dir" ] ~docv:"DIR"
        ~doc:"Directory for trace.json and metrics.jsonl (created if missing).")

let cmd =
  let term =
    Term.(
      const main $ bench_arg
      $ Cli_common.config ~names:[ "c"; "config" ]
          ~doc:
            "Protocol configuration: base, rac, delegation, full, or a snooping \
             backend (msi, mesi)." ()
      $ Cli_common.nodes ~default:8 ()
      $ Cli_common.scale ~default:0.15 ~doc:"Run-length scale for app benchmarks." ()
      $ Cli_common.seed ~default:7 ()
      $ sample_arg $ out_dir_arg
      $ Cli_common.max_events ~doc:"Event budget for the run." ()
      $ flight_arg $ Cli_common.metrics ())
  in
  Cmd.v
    (Cmd.info "pcc_trace"
       ~doc:
         "Run a workload with transaction-level telemetry: Perfetto trace export, \
          time-series metrics, and a latency/phase report")
    term

let () = exit (Cmd.eval' cmd)
