(* Transaction-level telemetry: run one workload with the telemetry
   recorder attached and emit a Perfetto trace (trace.json), time-series
   metrics (metrics.jsonl), and a text latency/phase report.  Doubles as
   a self-profiler of the simulator (events/sec, peak queue depth).

     dune exec bin/pcc_trace.exe -- --out-dir /tmp/pcc
     dune exec bin/pcc_trace.exe -- --workload em3d --config full --sample-every 200

   Load trace.json at https://ui.perfetto.dev or chrome://tracing. *)

open Cmdliner
open Pcc
module Sim = Pcc.Simulator

(* Post-mortem decode mode: turn a flight-recorder dump into a readable
   timeline on stdout and a Perfetto fragment next to the dump file. *)
let decode_flight path =
  match Telemetry.Flight.load path with
  | Error message ->
      Printf.eprintf "pcc_trace --flight: %s\n" message;
      2
  | Ok dump ->
      Format.printf "@[<v>%a@]@?" Telemetry.Flight.pp_timeline dump;
      let perfetto_path = path ^ ".perfetto.json" in
      Telemetry.Flight.write_perfetto ~path:perfetto_path dump;
      Format.printf "wrote %s (load at https://ui.perfetto.dev)@." perfetto_path;
      0

let run_traced ~workload_spec ~config_name ~nodes ~scale ~seed ~sample_every ~out_dir
    ~max_events ~metrics_path =
  let workload =
    Cli_common.resolve_workload ~tool:"pcc_trace" ~nodes ~scale ~seed workload_spec
  in
  let nodes = Workload.nodes workload in
  let config =
    Oracle.Trace.config_of_desc
      {
        Oracle.Trace.bench = Workload.name workload;
        config_name;
        nodes;
        scale;
        seed;
        fault = false;
      }
  in
  let sys = System.create ~config () in
  let recorder = Telemetry.Recorder.attach ~sample_every sys in
  let wall_start = Unix.gettimeofday () in
  let result = System.run_stream ~max_events sys (Workload.stream workload) in
  let wall = Unix.gettimeofday () -. wall_start in
  let sim = System.sim sys in
  (match Unix.mkdir out_dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let spans = Telemetry.Recorder.spans recorder in
  let samples = Telemetry.Recorder.samples recorder in
  let recoveries = Telemetry.Recorder.recoveries recorder in
  Cli_common.write_metrics metrics_path (fun registry ->
      Telemetry.Registry.add_result registry result;
      Telemetry.Registry.add_system registry sys);
  let trace_path = Filename.concat out_dir "trace.json" in
  let metrics_path = Filename.concat out_dir "metrics.jsonl" in
  Telemetry.Perfetto.write ~recoveries ~path:trace_path spans;
  Telemetry.Metrics.write ~path:metrics_path
    ~links:(Telemetry.Recorder.retransmits_by_link recorder)
    samples;
  Telemetry.Report.print Format.std_formatter ~result ~spans ~samples ~recoveries
    ~self:
      {
        Telemetry.Report.wall_seconds = wall;
        events_executed = Sim.events_executed sim;
        peak_queue_depth = Sim.peak_pending sim;
      }
    ();
  Format.printf "wrote %s (%d spans), %s (%d samples)@." trace_path
    (List.length spans) metrics_path (List.length samples);
  let leftovers = Telemetry.Recorder.open_span_count recorder in
  if leftovers > 0 then begin
    Format.printf "WARNING: %d spans never closed (run did not quiesce?)@." leftovers;
    1
  end
  else if result.System.outcome <> Sim.Drained then 1
  else 0

let main workload_spec config_name nodes scale seed sample_every out_dir max_events
    flight metrics_path =
  match flight with
  | Some path -> decode_flight path
  | None ->
      run_traced ~workload_spec ~config_name ~nodes ~scale ~seed ~sample_every
        ~out_dir ~max_events ~metrics_path

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Decode a flight-recorder post-mortem dump instead of running a \
           workload: print the retained event window as a timeline and write \
           $(docv).perfetto.json next to it.")

(* --workload with --bench kept as this tool's historical alias. *)
let workload_arg =
  let workload =
    let doc =
      Printf.sprintf
        "Workload spec: $(i,NAME) or $(i,NAME:key=value,...).  Names: %s."
        (String.concat ", " (Pcc.Workload.names ()))
    in
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"SPEC" ~doc)
  in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "bench" ] ~docv:"NAME"
          ~doc:"Deprecated alias for $(b,--workload); emits a warning.")
  in
  let combine w b =
    match (w, b) with
    | Some spec, None -> spec
    | Some spec, Some _ ->
        prerr_endline "warning: --bench ignored because --workload was given";
        spec
    | None, Some spec ->
        prerr_endline
          "warning: --bench is deprecated; use --workload NAME[:key=value,...] instead";
        spec
    | None, None -> "prodcons"
  in
  Term.(const combine $ workload $ bench)

let sample_arg =
  Arg.(
    value & opt int 500
    & info [ "sample-every" ] ~docv:"CYCLES"
        ~doc:
          "Time-series sampling cadence in simulated cycles (0 disables).  The \
           retained series is bounded: past the cap the recorder decimates and \
           doubles its cadence, so artifacts stay small at any run length.")

let out_dir_arg =
  Arg.(
    value & opt string "telemetry-out"
    & info [ "o"; "out-dir" ] ~docv:"DIR"
        ~doc:"Directory for trace.json and metrics.jsonl (created if missing).")

let cmd =
  let term =
    Term.(
      const main $ workload_arg
      $ Cli_common.config ~names:[ "c"; "config" ]
          ~doc:
            "Protocol configuration: base, rac, delegation, full, or a snooping \
             backend (msi, mesi)."
          ()
      $ Cli_common.nodes ~default:8 ()
      $ Cli_common.scale ~default:0.15 ~doc:"Run-length scale for app benchmarks." ()
      $ Cli_common.seed ~default:7 ()
      $ sample_arg $ out_dir_arg
      $ Cli_common.max_events ~doc:"Event budget for the run." ()
      $ flight_arg $ Cli_common.metrics ())
  in
  Cmd.v
    (Cmd.info "pcc_trace"
       ~doc:
         "Run a workload with transaction-level telemetry: Perfetto trace export, \
          time-series metrics, and a latency/phase report")
    term

let () = exit (Cmd.eval' cmd)
