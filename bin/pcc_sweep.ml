(* Parameter-sweep driver: vary one knob of the machine configuration and
   print a row per setting.  Settings are independent simulations, so the
   sweep fans out across domains (--jobs N / PCC_JOBS; 1 = sequential).

     dune exec bin/pcc_sweep.exe -- --workload mg --knob delegate --values 32,64,128,1024 *)

open Pcc
open Cmdliner

let apply_knob config knob value =
  match knob with
  | "delegate" -> Ok { config with Config.delegate_entries = value }
  | "rac-kb" -> Ok { config with Config.rac_bytes = value * 1024 }
  | "delay" -> Ok { config with Config.intervention_delay = value }
  | "hop" -> Ok (Config.with_hop_latency config value)
  | other -> Error (Printf.sprintf "unknown knob %S (delegate, rac-kb, delay, hop)" other)

let write_json path ~app_name ~workload ~knob ~protocol ~nodes ~scale
    ~(base : System.result) rows =
  let row (value, (r : System.result)) =
    Jsonl.Obj
      [
        ("value", Jsonl.Int value);
        ("cycles", Jsonl.Int r.System.cycles);
        ( "speedup",
          Jsonl.Float (float_of_int base.System.cycles /. float_of_int r.System.cycles) );
        ("network_messages", Jsonl.Int r.System.network_messages);
        ("remote_misses", Jsonl.Int (Run_stats.remote_misses r.System.stats));
        ("violations", Jsonl.Int r.System.violations);
      ]
  in
  let doc =
    Jsonl.Obj
      [
        ("app", Jsonl.String app_name);
        ("workload", Jsonl.String workload);
        ("knob", Jsonl.String knob);
        ("protocol", Jsonl.String (Protocol.to_string protocol));
        ("nodes", Jsonl.Int nodes);
        ("scale", Jsonl.Float scale);
        ("base_cycles", Jsonl.Int base.System.cycles);
        ("rows", Jsonl.List (List.map row rows));
      ]
  in
  Atomic_file.write ~path (fun oc ->
      output_string oc (Jsonl.to_string doc);
      output_char oc '\n')

let run workload_spec knob values protocol nodes scale seed jobs json_path metrics_path =
  let workload =
    Cli_common.resolve_workload ~tool:"pcc_sweep" ~nodes ~scale ~seed workload_spec
  in
  let nodes = Workload.nodes workload in
  (
      (* Validate every setting before spending any simulation time. *)
      let swept = { (Config.small_full ~nodes ()) with Config.protocol } in
      let configs = List.map (fun value -> (value, apply_knob swept knob value)) values in
      match
        List.filter_map (function _, Error m -> Some m | _, Ok _ -> None) configs
      with
      | message :: _ ->
          prerr_endline message;
          1
      | [] ->
          let configs =
            List.map (function v, Ok c -> (v, c) | _, Error _ -> assert false) configs
          in
          (* Materialize once, outside the pool: every swept setting runs
             the same program array (and lazy workloads are forced in the
             main domain, not raced from workers). *)
          let programs = Workload.programs workload in
          (* The baseline rides in the pool with the swept settings. *)
          let baseline = { (Config.base ~nodes ()) with Config.protocol } in
          let tasks =
            ("base", fun () -> System.run ~config:baseline ~programs ())
            :: List.map
                 (fun (value, config) ->
                   (string_of_int value, fun () -> System.run ~config ~programs ()))
                 configs
          in
          let base, results =
            match Pool.run_keyed ~jobs tasks with
            | base :: results -> (base, List.combine (List.map fst configs) results)
            | [] -> assert false
          in
          let table =
            Table.create
              ~title:(Printf.sprintf "%s: sweep of %s (baseline %d cycles)"
                        (Workload.name workload) knob base.System.cycles)
              ~columns:[ knob; "cycles"; "speedup"; "net msgs"; "remote misses"; "violations" ]
          in
          let failed = ref false in
          List.iter
            (fun (value, r) ->
              if r.System.violations > 0 || r.System.invariant_errors <> [] then
                failed := true;
              Table.add_row table
                [
                  Table.Int value;
                  Table.Int r.System.cycles;
                  Table.Float (float_of_int base.System.cycles /. float_of_int r.System.cycles);
                  Table.Int r.System.network_messages;
                  Table.Int (Run_stats.remote_misses r.System.stats);
                  Table.Int r.System.violations;
                ])
            results;
          Table.print table;
          (match json_path with
          | Some path ->
              write_json path ~app_name:(Workload.name workload)
                ~workload:(Workload.describe workload) ~knob ~protocol ~nodes ~scale
                ~base results
          | None -> ());
          (* Aggregate registry: counters sum across every swept setting
             (summaries skipped — they would just keep the last run). *)
          Cli_common.write_metrics metrics_path (fun registry ->
              List.iter
                (fun r -> Telemetry.Registry.add_result ~summaries:false registry r)
                (base :: List.map snd results);
              Telemetry.Registry.gauge registry "pcc_sweep_settings"
                (List.length results));
          if !failed then 2 else 0)

let seed_arg = Cli_common.seed ()

let knob_arg =
  Arg.(
    value & opt string "delegate"
    & info [ "k"; "knob" ] ~doc:"Parameter: delegate, rac-kb, delay, hop.")

let values_arg =
  Arg.(
    value
    & opt (list int) [ 32; 64; 128; 256; 512; 1024 ]
    & info [ "values" ] ~doc:"Comma-separated settings.")

let cmd =
  let term =
    Term.(
      const run $ Cli_common.workload ~default:"mg" () $ knob_arg $ values_arg
      $ Cli_common.protocol ()
      $ Cli_common.nodes () $ Cli_common.scale () $ seed_arg
      $ Cli_common.jobs ~what:"settings" ()
      $ Cli_common.json ~doc:"Write machine-readable sweep results to $(docv)." ()
      $ Cli_common.metrics ())
  in
  Cmd.v (Cmd.info "pcc_sweep" ~doc:"Sweep one machine parameter over a workload") term

let () = exit (Cmd.eval' cmd)
